"""Error taxonomy of the sweep runtime.

Long sweeps fail in qualitatively different ways — a worker process
dies, a point exceeds its wall-clock budget, the kernel raises, or the
discrete-event loop itself stops making progress — and the runner's
retry/skip/fallback machinery needs to tell them apart.  Every failure
is normalized into a :class:`TaskError` subtype carrying the task
label, the attempt count, and a cause string, and each type knows
whether retrying can possibly help (``retryable``): a crashed or hung
worker might succeed on a fresh process, but a diverged simulation is
deterministic and will diverge again.

All types pickle cleanly (workers raise them across the process
boundary) and serialize to plain-JSON payloads (failure records land in
sweep reports, checkpoint manifests, and CLI output).
"""

from __future__ import annotations


class TaskError(Exception):
    """A sweep point failed.

    Base of the taxonomy and the wrapper for generic exceptions raised
    inside a task.  ``label``/``attempts``/``cause`` are filled in by
    the runner via :meth:`with_context` once it knows which submission
    and which retry produced the failure.
    """

    kind = "error"
    retryable = True

    def __init__(self, message="", label=None, attempts=0, cause=None):
        super().__init__(message)
        self.message = message
        self.label = label
        self.attempts = int(attempts)
        self.cause = cause

    def payload(self):
        """Plain-JSON description for records, manifests, and the CLI."""
        return {
            "kind": self.kind,
            "message": self.message,
            "label": self.label,
            "attempts": self.attempts,
            "cause": self.cause,
        }

    def with_context(self, label=None, attempts=None):
        """Copy of this error annotated with runner-side context."""
        return type(self)(
            self.message,
            label=self.label if label is None else label,
            attempts=self.attempts if attempts is None else attempts,
            cause=self.cause,
        )

    def __reduce__(self):
        # Multi-field exceptions need an explicit recipe: the default
        # reduce replays __init__ with ``args`` only, dropping the
        # structured fields on the worker->parent pickle hop.
        return (
            type(self),
            (self.message, self.label, self.attempts, self.cause),
        )

    def __str__(self):
        parts = [self.message or self.kind]
        if self.label:
            parts.append(f"[{self.label}]")
        if self.attempts:
            parts.append(f"(attempt {self.attempts})")
        return " ".join(parts)


class TaskTimeout(TaskError):
    """A point exceeded its per-task wall-clock budget."""

    kind = "timeout"
    retryable = True


class WorkerCrash(TaskError):
    """The worker process executing a point died (``BrokenProcessPool``)."""

    kind = "crash"
    retryable = True


class SimulationDiverged(TaskError):
    """The DES event loop tripped a watchdog ceiling.

    Raised by :meth:`repro.piuma.engine.Simulator.run` when the event
    count, simulated time, or stall detector exceeds the
    :class:`~repro.piuma.config.PIUMAConfig` ceilings.  Deterministic —
    re-running the same point diverges identically — so never retried.
    """

    kind = "diverged"
    retryable = False


class InvariantViolation(TaskError):
    """The runtime invariant sanitizer caught an accounting violation.

    Raised by :mod:`repro.piuma.invariants` when a check enabled via
    ``PIUMAConfig.check_level`` fails — event time ran backwards, a
    resource served more bytes than its timeline occupancy can explain,
    DMA byte conservation broke, and so on.  ``invariant`` names the
    specific check (see ``repro.piuma.invariants.INVARIANTS``).

    Deterministic — the same simulation violates the same invariant
    again — so never retried, like :class:`SimulationDiverged`.
    """

    kind = "invariant"
    retryable = False

    def __init__(self, message="", invariant=None, label=None, attempts=0,
                 cause=None):
        super().__init__(message, label=label, attempts=attempts, cause=cause)
        self.invariant = invariant

    def payload(self):
        data = super().payload()
        data["invariant"] = self.invariant
        return data

    def with_context(self, label=None, attempts=None):
        return type(self)(
            self.message,
            invariant=self.invariant,
            label=self.label if label is None else label,
            attempts=self.attempts if attempts is None else attempts,
            cause=self.cause,
        )

    def __reduce__(self):
        return (
            type(self),
            (self.message, self.invariant, self.label, self.attempts,
             self.cause),
        )

    def __str__(self):
        text = super().__str__()
        if self.invariant:
            text = f"{self.invariant}: {text}"
        return text


class _RetryAfterError(TaskError):
    """Base for admission-control rejections carrying a retry hint.

    These never come from inside a worker — the scheduler raises them
    *instead of* accepting work — but they share the taxonomy so CLI
    output, HTTP handlers, and tests treat every refusal uniformly.
    ``retry_after_s`` is advice, not a promise: the earliest moment a
    retry could plausibly be admitted.
    """

    retryable = True

    def __init__(self, message="", retry_after_s=1.0, label=None,
                 attempts=0, cause=None):
        super().__init__(message, label=label, attempts=attempts, cause=cause)
        self.retry_after_s = float(retry_after_s)

    def payload(self):
        data = super().payload()
        data["retry_after_s"] = self.retry_after_s
        return data

    def with_context(self, label=None, attempts=None):
        return type(self)(
            self.message,
            retry_after_s=self.retry_after_s,
            label=self.label if label is None else label,
            attempts=self.attempts if attempts is None else attempts,
            cause=self.cause,
        )

    def __reduce__(self):
        return (
            type(self),
            (self.message, self.retry_after_s, self.label, self.attempts,
             self.cause),
        )


class QueueSaturated(_RetryAfterError):
    """The bounded request queue is full; the work was *not* accepted.

    Raised by :class:`~repro.runtime.jobs.JobScheduler.submit` (and the
    prediction service on top of it) when admitting one more job would
    exceed ``max_pending``.  Explicit backpressure: the caller sees a
    structured refusal (HTTP 429 with ``Retry-After``) rather than an
    unbounded queue silently converting overload into latency.
    """

    kind = "saturated"


class CircuitOpen(_RetryAfterError):
    """The DES worker-pool circuit breaker is open; work was refused.

    Raised at admission while the :class:`~repro.runtime.breaker.
    CircuitBreaker` protecting the simulation pool is open (consecutive
    worker crashes / timeouts tripped it) and the caller did not win a
    half-open probe slot.  The prediction service degrades such
    requests to the tier-0 analytical answer instead of surfacing the
    error.
    """

    kind = "circuit_open"


class HardwareExhausted(TaskError):
    """The degraded fabric cannot execute the kernel at all.

    Raised by :mod:`repro.piuma.degradation`-aware components when a
    kernel's required hardware has no surviving member — every DMA
    engine a core-side op needs is dead, or no MTP pipeline is left to
    place threads on (see ``PIUMAConfig.degradation``).  Deterministic:
    the spec decides which units are dead, so re-running exhausts the
    same hardware again — never retried, like
    :class:`SimulationDiverged`; the watchdogs remain the backstop.
    """

    kind = "exhausted"
    retryable = False


def wrap_failure(error, label, attempts):
    """Normalize any exception into a context-annotated :class:`TaskError`.

    Taxonomy members keep their type (and ``retryable`` semantics);
    everything else becomes a generic retryable :class:`TaskError` with
    the original ``repr`` as the cause.
    """
    if isinstance(error, TaskError):
        return error.with_context(label=label, attempts=attempts)
    return TaskError(
        str(error) or type(error).__name__,
        label=label,
        attempts=attempts,
        cause=repr(error),
    )


def failure_record(error):
    """Structured stand-in record for a skipped point.

    Keeps the sweep's submission-order invariant: the record slot is
    filled, flagged ``"source": "failed"``, and carries the full error
    payload instead of simulation numbers.
    """
    return {
        "source": "failed",
        "error": error.payload(),
        "sim_time_ns": 0.0,
    }
