"""Reusable job-execution primitives shared by batch sweeps and the
online prediction service.

PR 1-5 grew :func:`repro.runtime.runner.run_sweep` a robust inner
machine — windowed submission into a process pool, per-task wall-clock
timeouts enforced by killing hung workers, pool respawn on
``BrokenProcessPool``, bounded retries with deterministic backoff.
That machine was welded into one batch-shaped loop ("run this finite
grid, return when done").  This module extracts it into pieces an
*online* frontend can also use:

* :func:`backoff_delay` — the retry-delay policy (exponential with
  deterministic jitter), shared verbatim with the batch runner;
* :class:`ExecPool` — a lazily spawned, kill-capable, respawnable
  ``ProcessPoolExecutor`` wrapper (the only sanctioned way to stop a
  hung worker is to kill its process, which takes the pool with it);
* :class:`Job` — one admitted unit of work with a thread-safe
  completion latch, shared by however many callers coalesced onto it;
* :class:`JobScheduler` — a persistent streaming scheduler: bounded
  admission with explicit :class:`~repro.runtime.errors.QueueSaturated`
  backpressure, coalescing of identical in-flight work by content key,
  per-job timeouts, bounded retries, automatic pool respawn, and an
  optional :class:`~repro.runtime.breaker.CircuitBreaker` consulted at
  admission and fed by infrastructure outcomes (crashes / timeouts).

The batch runner keeps its own drain loop (batch semantics — strict
submission-order results, checkpoint integration — are different
enough that sharing the *loop* would help neither) but now builds on
:class:`ExecPool` and :func:`backoff_delay`, so pool lifecycle and
retry policy have exactly one implementation.
"""

from __future__ import annotations

import heapq
import threading
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.runtime.errors import (
    CircuitOpen,
    QueueSaturated,
    TaskError,
    TaskTimeout,
    WorkerCrash,
    wrap_failure,
)


def backoff_delay(attempt, backoff_s, backoff_cap_s, jitter, rng):
    """Exponential backoff with multiplicative jitter for one retry."""
    if backoff_s <= 0:
        return 0.0
    base = min(backoff_cap_s, backoff_s * (2 ** max(0, attempt - 1)))
    if jitter > 0:
        base += rng.uniform(0.0, jitter * base)
    return base


def run_task(task):
    """Module-level trampoline so tasks pickle into worker processes."""
    return task.run()


class ExecPool:
    """Lazily spawned, kill-capable, respawnable process pool.

    ``ProcessPoolExecutor`` cannot cancel a running call; the only way
    to stop a hung or wedged worker is to kill its process, which
    breaks the whole pool.  This wrapper owns that lifecycle: the pool
    spawns on first :meth:`submit`, :meth:`close` optionally kills the
    worker processes first, and a closed pool transparently respawns on
    the next submit — so callers express "kill and respawn" as
    ``close(kill=True)`` followed by business as usual.
    """

    def __init__(self, max_workers):
        self.max_workers = max(1, int(max_workers))
        self._pool = None
        #: Lifetime respawn count (observability: /healthz, tests).
        self.spawns = 0

    @property
    def active(self):
        return self._pool is not None

    def submit(self, fn, *args):
        """Submit a call, spawning the pool if needed.

        Propagates whatever the executor raises (e.g. submitting into a
        pool that broke between completions) — the caller decides
        whether to close-and-retry.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self.spawns += 1
        return self._pool.submit(fn, *args)

    def close(self, kill=False):
        """Shut the pool down (``kill=True`` hard-kills workers first).

        Idempotent; a later :meth:`submit` respawns a fresh pool.
        """
        if self._pool is None:
            return
        if kill:
            # The only way to stop a hung (or wedged) worker: the
            # executor API cannot cancel a running call.
            processes = getattr(self._pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.kill()
                except Exception:
                    pass
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None


class Job:
    """One admitted unit of work, shared by every coalesced waiter.

    Created by :meth:`JobScheduler.submit`; callers block on
    :meth:`wait` / :meth:`result`.  A job always reaches exactly one
    terminal state — a record or a :class:`TaskError` — even if every
    waiter gave up long ago (the scheduler never drops accepted work).
    """

    __slots__ = ("task", "key", "waiters", "attempts", "accepted_at",
                 "record", "error", "_done")

    def __init__(self, task, key, clock=time.monotonic):
        self.task = task
        self.key = key
        self.waiters = 1
        self.attempts = 0
        self.accepted_at = clock()
        self.record = None
        self.error = None
        self._done = threading.Event()

    @property
    def done(self):
        return self._done.is_set()

    def wait(self, timeout=None):
        """Block until the job is terminal; False on wait timeout.

        A ``False`` return does *not* cancel the job — it keeps
        running, and its record still lands wherever the scheduler's
        ``on_result`` callback puts it (the service's shared cache).
        """
        return self._done.wait(timeout)

    def result(self, timeout=None):
        """The job's record; raises its :class:`TaskError` on failure.

        Raises :class:`TimeoutError` if the job is not terminal within
        ``timeout`` seconds.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.key or id(self)} not done after {timeout}s"
            )
        if self.error is not None:
            raise self.error
        return self.record

    def _finish(self, record):
        self.record = record
        self._done.set()

    def _fail(self, error):
        self.error = error
        self._done.set()


class SchedulerStats:
    """Lifetime counters of one :class:`JobScheduler` (plain ints)."""

    FIELDS = ("accepted", "coalesced", "rejected_full", "rejected_open",
              "completed", "failed", "retried", "crashes", "timeouts")

    def __init__(self):
        for name in self.FIELDS:
            setattr(self, name, 0)

    def snapshot(self):
        return {name: getattr(self, name) for name in self.FIELDS}


class JobScheduler:
    """Persistent streaming job scheduler over a process pool.

    The online counterpart of :func:`~repro.runtime.runner.run_sweep`:
    work arrives one job at a time from concurrent frontends instead of
    as a finite grid, so admission control, coalescing, and breaker
    integration live here rather than result ordering and checkpoints.

    Parameters
    ----------
    workers:
        Process-pool width (also the submission window: at most this
        many jobs execute concurrently, so a job's ``timeout`` measures
        execution, not queueing).
    timeout:
        Per-attempt wall-clock budget in seconds; on expiry the worker
        processes are killed, the pool respawned, the expired job
        charged a :class:`TaskTimeout` attempt, and in-flight innocents
        resubmitted uncharged.  ``None`` disables.
    retries:
        Extra attempts per job after a retryable failure.
    max_pending:
        Bound on accepted-but-unfinished jobs (queued + retrying +
        in-flight).  :meth:`submit` raises
        :class:`~repro.runtime.errors.QueueSaturated` beyond it —
        explicit backpressure instead of unbounded queueing.
    breaker:
        Optional :class:`~repro.runtime.breaker.CircuitBreaker`.
        Consulted at admission (refusal raises
        :class:`~repro.runtime.errors.CircuitOpen`); fed
        ``record_failure`` on every crash/timeout *attempt* and
        ``record_success`` on every completion.  Deterministic task
        failures (diverged simulation, invariant violation, a plain
        exception inside ``task.run()``) say nothing about pool health
        and do not touch it.
    on_result / on_failure:
        Callbacks ``(job, record)`` / ``(job, error)`` invoked from the
        scheduler thread when a job turns terminal — the service uses
        ``on_result`` to backfill the shared cache *before* waiters
        wake.  Exceptions are swallowed with a warning: a bookkeeping
        callback must not kill the pump.
    backoff_s / backoff_cap_s / jitter / rng_seed:
        Retry-delay policy (:func:`backoff_delay`).
    poll_s:
        Pump granularity: how often the scheduler re-checks queues and
        timeouts while work is in flight.
    """

    def __init__(self, workers=2, *, timeout=None, retries=0,
                 max_pending=64, breaker=None, on_result=None,
                 on_failure=None, backoff_s=0.25, backoff_cap_s=8.0,
                 jitter=0.0, rng_seed=1729, poll_s=0.05,
                 clock=time.monotonic):
        import random

        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.workers = max(1, int(workers))
        self.timeout = timeout
        self.retries = int(retries)
        self.max_pending = int(max_pending)
        self.breaker = breaker
        self.on_result = on_result
        self.on_failure = on_failure
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.jitter = jitter
        self.poll_s = poll_s
        self._rng = random.Random(rng_seed)
        self._clock = clock
        self.pool = ExecPool(self.workers)
        self.stats = SchedulerStats()

        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._queue = deque()      # admitted jobs awaiting submission
        self._retry = []           # heap of (ready_at, seq, job)
        self._retry_seq = 0
        self._jobs = {}            # key -> live job (coalescing index)
        self._inflight = {}        # future -> (job, started_at)
        self._pending = 0          # queued + retrying + in-flight
        self._closed = False
        self._drain = False
        self._thread = threading.Thread(
            target=self._run, name="job-scheduler", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Frontend API (any thread)

    @property
    def pending(self):
        """Accepted-but-unfinished jobs (queued + retrying + in-flight)."""
        with self._lock:
            return self._pending

    def submit(self, task, key=None):
        """Admit ``task``; returns its (possibly shared) :class:`Job`.

        ``key`` is the coalescing identity — normally the task's
        content-cache key.  If a live job with the same key is already
        accepted, no new work is created: the caller becomes one more
        waiter on that job (one DES run fans out to all of them).
        ``key=None`` disables coalescing for this submission.

        Raises
        ------
        QueueSaturated
            The bounded queue is full.  Carries ``retry_after_s``.
        CircuitOpen
            The breaker is open and no probe slot was available.
        RuntimeError
            The scheduler has been closed.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if key is not None:
                job = self._jobs.get(key)
                if job is not None:
                    job.waiters += 1
                    self.stats.coalesced += 1
                    return job
            if self._pending >= self.max_pending:
                self.stats.rejected_full += 1
                raise QueueSaturated(
                    f"job queue full ({self._pending}/{self.max_pending} "
                    "pending)",
                    retry_after_s=self._retry_after_estimate(),
                    label=self._label(task),
                )
            if self.breaker is not None and not self.breaker.allow():
                self.stats.rejected_open += 1
                raise CircuitOpen(
                    "worker-pool circuit breaker is open",
                    retry_after_s=max(1.0, self.breaker.retry_after_s()),
                    label=self._label(task),
                )
            job = Job(task, key, clock=self._clock)
            if key is not None:
                self._jobs[key] = job
            self._queue.append(job)
            self._pending += 1
            self.stats.accepted += 1
        self._wake.set()
        return job

    def snapshot(self):
        """Structured queue state for ``/healthz``."""
        with self._lock:
            return {
                "workers": self.workers,
                "max_pending": self.max_pending,
                "pending": self._pending,
                "queued": len(self._queue),
                "retrying": len(self._retry),
                "inflight": len(self._inflight),
                "pool_active": self.pool.active,
                "pool_spawns": self.pool.spawns,
                "counters": self.stats.snapshot(),
            }

    def close(self, drain=False, timeout=30.0):
        """Stop the scheduler; returns True if it stopped cleanly.

        ``drain=True`` finishes every accepted job first (bounded by
        ``timeout`` seconds — ``repro serve --drain-timeout``); when
        the budget expires the drain is abandoned and the remaining
        jobs fail with a structured :class:`TaskError`, exactly like
        ``drain=False``.  ``False`` (default) fails queued / retrying /
        in-flight jobs immediately and kills the pool — shutdown is the
        one path allowed to interrupt accepted work, and it does so
        loudly, never silently.
        """
        with self._lock:
            self._closed = True
            self._drain = drain
        self._wake.set()
        self._thread.join(timeout)
        drained = not self._thread.is_alive()
        if not drained:
            # Drain budget exhausted: flip to abort mode so the pump
            # fails leftovers loudly instead of waiting forever on a
            # wedged pool, then give it a moment to do so.
            with self._lock:
                self._drain = False
            self._wake.set()
            self._thread.join(5.0)
        self.pool.close(kill=True)
        return drained

    # ------------------------------------------------------------------
    # Pump internals (scheduler thread only)

    def _label(self, task):
        label = getattr(task, "label", None)
        return label() if callable(label) else None

    def _retry_after_estimate(self):
        # Crude but honest: pending work divided by pool width, scaled
        # by the per-attempt budget (or a 1s floor when unbounded).
        per_job = self.timeout if self.timeout else 1.0
        return max(1.0, self._pending * per_job / self.workers)

    def _run(self):
        while True:
            with self._lock:
                now = self._clock()
                while self._retry and self._retry[0][0] <= now:
                    _ready, _seq, job = heapq.heappop(self._retry)
                    self._queue.append(job)
                if self._closed and not self._drain:
                    break
                while self._queue and len(self._inflight) < self.workers:
                    job = self._queue.popleft()
                    try:
                        future = self.pool.submit(run_task, job.task)
                    except Exception:
                        # Pool broke between completions; respawn on
                        # the next pass and try again.
                        self._queue.appendleft(job)
                        self.pool.close(kill=False)
                        break
                    self._inflight[future] = (job, time.monotonic())
                inflight = dict(self._inflight)
                idle = not inflight and not self._queue
                done_draining = (self._closed and self._drain and idle
                                 and not self._retry)
                next_retry = self._retry[0][0] if self._retry else None
            if done_draining:
                break
            if not inflight:
                delay = self.poll_s
                if idle and next_retry is None:
                    delay = 1.0  # nothing to do until a submit wakes us
                elif next_retry is not None:
                    delay = min(1.0, max(0.0, next_retry - self._clock()))
                self._wake.wait(delay)
                self._wake.clear()
                continue
            self._pump_inflight(inflight)
        self._abort_remaining()

    def _pump_inflight(self, inflight):
        wait_s = self.poll_s
        if self.timeout is not None:
            oldest = min(at for _job, at in inflight.values())
            wait_s = min(
                wait_s, max(0.0, oldest + self.timeout - time.monotonic())
            )
        done, _pending = wait(list(inflight), timeout=wait_s,
                              return_when=FIRST_COMPLETED)
        pool_broken = False
        for future in done:
            with self._lock:
                job, started_at = self._inflight.pop(future)
            try:
                record = future.result()
            except BrokenProcessPool:
                pool_broken = True
                self._attempt_failed(job, WorkerCrash(
                    "worker process died",
                    label=self._label(job.task),
                    attempts=job.attempts + 1,
                    cause="BrokenProcessPool",
                ), infra=True)
            except Exception as raw:
                error = wrap_failure(
                    raw, self._label(job.task), job.attempts + 1
                )
                self._attempt_failed(
                    job, error,
                    infra=isinstance(error, (WorkerCrash, TaskTimeout)),
                )
            else:
                job.attempts += 1
                self._job_done(job, record)
        if pool_broken:
            # Every sibling future died with the pool; the culprit is
            # indistinguishable, so each in-flight job is charged a
            # crash attempt and the pool respawns for the rest.
            with self._lock:
                orphans = list(self._inflight.values())
                self._inflight.clear()
            for job, _started_at in orphans:
                self._attempt_failed(job, WorkerCrash(
                    "worker process died",
                    label=self._label(job.task),
                    attempts=job.attempts + 1,
                    cause="BrokenProcessPool",
                ), infra=True)
            self.pool.close(kill=False)
            return
        if self.timeout is None:
            return
        now = time.monotonic()
        with self._lock:
            expired = [
                (future, job, started_at)
                for future, (job, started_at) in self._inflight.items()
                if now - started_at >= self.timeout
            ]
            if not expired:
                return
            for future, _job, _at in expired:
                del self._inflight[future]
            # Killing the hung worker kills the whole pool; in-flight
            # innocents are re-queued without being charged an attempt.
            innocents = [job for job, _at in self._inflight.values()]
            self._inflight.clear()
            self._queue.extendleft(reversed(innocents))
        for _future, job, _started_at in expired:
            self._attempt_failed(job, TaskTimeout(
                f"no result after {self.timeout:.1f}s",
                label=self._label(job.task),
                attempts=job.attempts + 1,
                cause=f"timeout={self.timeout}",
            ), infra=True)
        self.pool.close(kill=True)

    def _attempt_failed(self, job, error, infra):
        job.attempts = error.attempts
        if isinstance(error, WorkerCrash):
            self.stats.crashes += 1
        elif isinstance(error, TaskTimeout):
            self.stats.timeouts += 1
        if infra and self.breaker is not None:
            self.breaker.record_failure()
        if error.retryable and job.attempts <= self.retries:
            delay = backoff_delay(job.attempts, self.backoff_s,
                                  self.backoff_cap_s, self.jitter, self._rng)
            with self._lock:
                heapq.heappush(
                    self._retry,
                    (self._clock() + delay, self._retry_seq, job),
                )
                self._retry_seq += 1
            self.stats.retried += 1
            return
        self._job_terminal(job)
        self.stats.failed += 1
        if self.on_failure is not None:
            try:
                self.on_failure(job, error)
            except Exception as exc:  # pragma: no cover - defensive
                warnings.warn(f"on_failure callback raised: {exc!r}",
                              RuntimeWarning)
        job._fail(error)

    def _job_done(self, job, record):
        if self.breaker is not None:
            self.breaker.record_success()
        self._job_terminal(job)
        self.stats.completed += 1
        if self.on_result is not None:
            # Backfill callbacks run *before* waiters wake, so a waiter
            # that immediately re-queries the shared cache hits.
            try:
                self.on_result(job, record)
            except Exception as exc:
                warnings.warn(f"on_result callback raised: {exc!r}",
                              RuntimeWarning)
        job._finish(record)

    def _job_terminal(self, job):
        with self._lock:
            if job.key is not None and self._jobs.get(job.key) is job:
                del self._jobs[job.key]
            self._pending -= 1

    def _abort_remaining(self):
        """Closed without drain: fail leftovers loudly, kill the pool."""
        with self._lock:
            leftovers = list(self._queue)
            self._queue.clear()
            leftovers.extend(job for _r, _s, job in self._retry)
            self._retry = []
            leftovers.extend(job for job, _at in self._inflight.values())
            self._inflight.clear()
        for job in leftovers:
            self._job_terminal(job)
            self.stats.failed += 1
            job._fail(TaskError(
                "scheduler closed before the job finished",
                label=self._label(job.task),
                attempts=job.attempts,
                cause="shutdown",
            ))
        self.pool.close(kill=True)
