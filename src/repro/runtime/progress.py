"""Progress and metrics instrumentation for long sweeps.

The runner reports every completed point here: the tracker accumulates
per-point wall-clock, simulated nanoseconds, and cache-hit counters,
and (optionally) emits one live line per point so a multi-minute sweep
is observable rather than silent.  Degraded points (skipped failures,
model fallbacks) are tagged with a ``status`` so the narration shows
exactly which points the resilience layer absorbed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class PointMetrics:
    """Measurements of one finished sweep point."""

    label: str
    wall_s: float
    simulated_ns: float
    cached: bool
    #: ``None`` for a healthy simulated point; ``"failed"`` or
    #: ``"model_fallback"`` for points resolved by an error policy.
    status: str | None = None


class ProgressTracker:
    """Accumulates sweep metrics; optionally narrates each point.

    Parameters
    ----------
    total:
        Number of points in the sweep (for ``[i/total]`` prefixes).
    out:
        Callable for live per-point lines (e.g. ``print``); ``None``
        keeps the tracker silent (library / benchmark use).
    clock:
        Injectable time source (tests).
    """

    def __init__(self, total, out=None, clock=time.perf_counter):
        self.total = total
        self.out = out
        self._clock = clock
        self._started = clock()
        self.points = []

    def point_done(self, label, wall_s, simulated_ns, cached, status=None):
        """Record one finished point."""
        metrics = PointMetrics(
            label=label, wall_s=wall_s,
            simulated_ns=simulated_ns, cached=cached, status=status,
        )
        self.points.append(metrics)
        if self.out is not None:
            source = "cache" if cached else f"{wall_s:.2f}s"
            if status is not None:
                source += f", {status}"
            self.out(
                f"[{len(self.points)}/{self.total}] {label}: "
                f"sim {simulated_ns / 1e6:.3f} ms ({source})"
            )
        return metrics

    @property
    def done(self):
        return len(self.points)

    @property
    def cache_hits(self):
        return sum(1 for p in self.points if p.cached)

    @property
    def computed(self):
        return self.done - self.cache_hits

    @property
    def degraded(self):
        """Points resolved by an error policy instead of a simulation."""
        return sum(1 for p in self.points if p.status is not None)

    @property
    def compute_wall_s(self):
        """Wall-clock spent actually simulating (cache hits excluded)."""
        return sum(p.wall_s for p in self.points if not p.cached)

    @property
    def simulated_ns(self):
        return sum(p.simulated_ns for p in self.points)

    @property
    def elapsed_s(self):
        return self._clock() - self._started

    def summary(self):
        """One-paragraph sweep summary for CLI / benchmark output."""
        text = (
            f"{self.done}/{self.total} points in {self.elapsed_s:.2f}s "
            f"wall ({self.cache_hits} cached, {self.computed} computed, "
            f"{self.compute_wall_s:.2f}s simulating); "
            f"total simulated time {self.simulated_ns / 1e6:.3f} ms"
        )
        if self.degraded:
            text += f"; {self.degraded} degraded/failed"
        return text
