"""Progress and metrics instrumentation for long sweeps.

The runner reports every completed point here: the tracker accumulates
per-point wall-clock, simulated nanoseconds, and cache-hit counters,
and (optionally) emits one live line per point so a multi-minute sweep
is observable rather than silent.  Degraded points (skipped failures,
model fallbacks) are tagged with a ``status`` so the narration shows
exactly which points the resilience layer absorbed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class PointMetrics:
    """Measurements of one finished sweep point."""

    label: str
    wall_s: float
    simulated_ns: float
    cached: bool
    #: ``None`` for a healthy simulated point; ``"failed"`` or
    #: ``"model_fallback"`` for points resolved by an error policy.
    status: str | None = None
    #: Host-performance observability (zero for cached/degraded points
    #: and for records predating the fields): DES events executed and
    #: host seconds spent inside ``Simulator.run``.
    events: int = 0
    host_wall_s: float = 0.0

    @property
    def events_per_s(self):
        """Host-side DES throughput of this point (0 when unknown)."""
        if self.host_wall_s <= 0.0:
            return 0.0
        return self.events / self.host_wall_s


class ProgressTracker:
    """Accumulates sweep metrics; optionally narrates each point.

    Parameters
    ----------
    total:
        Number of points in the sweep (for ``[i/total]`` prefixes).
    out:
        Callable for live per-point lines (e.g. ``print``); ``None``
        keeps the tracker silent (library / benchmark use).
    clock:
        Injectable time source (tests).
    """

    def __init__(self, total, out=None, clock=time.perf_counter):
        self.total = total
        self.out = out
        self._clock = clock
        self._started = clock()
        self.points = []

    def point_done(self, label, wall_s, simulated_ns, cached, status=None,
                   events=0, host_wall_s=0.0):
        """Record one finished point."""
        metrics = PointMetrics(
            label=label, wall_s=wall_s,
            simulated_ns=simulated_ns, cached=cached, status=status,
            events=events, host_wall_s=host_wall_s,
        )
        self.points.append(metrics)
        if self.out is not None:
            source = "cache" if cached else f"{wall_s:.2f}s"
            if status is not None:
                source += f", {status}"
            self.out(
                f"[{len(self.points)}/{self.total}] {label}: "
                f"sim {simulated_ns / 1e6:.3f} ms ({source})"
            )
        return metrics

    @property
    def done(self):
        return len(self.points)

    @property
    def cache_hits(self):
        return sum(1 for p in self.points if p.cached)

    @property
    def computed(self):
        return self.done - self.cache_hits

    @property
    def degraded(self):
        """Points resolved by an error policy instead of a simulation."""
        return sum(1 for p in self.points if p.status is not None)

    @property
    def compute_wall_s(self):
        """Wall-clock spent actually simulating (cache hits excluded)."""
        return sum(p.wall_s for p in self.points if not p.cached)

    @property
    def simulated_ns(self):
        return sum(p.simulated_ns for p in self.points)

    @property
    def elapsed_s(self):
        return self._clock() - self._started

    @property
    def events(self):
        """Total DES events across all computed points."""
        return sum(p.events for p in self.points)

    @property
    def events_per_s(self):
        """Aggregate host-side DES throughput over the computed points."""
        host = sum(p.host_wall_s for p in self.points)
        if host <= 0.0:
            return 0.0
        return self.events / host

    def slowest(self, n=5):
        """The ``n`` healthy computed points with the most host wall-clock.

        Cached points are excluded (they cost nothing this run), and so
        are degraded points (``status`` set): their wall-clock is
        dominated by timeout waits and retry backoff, not simulation,
        so ranking them here would indict healthy configs.  Ties keep
        submission order.
        """
        computed = [
            p for p in self.points if not p.cached and p.status is None
        ]
        computed.sort(key=lambda p: -p.wall_s)
        return computed[:n]

    def profile_lines(self, n=5):
        """Host-performance report lines for ``repro sweep --profile``.

        Degraded points are excluded from the slowest ranking and
        reported on their own status-tagged lines instead — their
        wall-clock measures the error policy (timeouts, retries), not
        the simulator.
        """
        lines = [
            f"host perf: {self.events:,} DES events in "
            f"{sum(p.host_wall_s for p in self.points):.2f}s simulator "
            f"time ({self.events_per_s:,.0f} events/s)"
        ]
        slowest = self.slowest(n)
        if slowest:
            lines.append(f"slowest {len(slowest)} point(s):")
            for p in slowest:
                rate = (f"{p.events_per_s:,.0f} ev/s"
                        if p.events else "no event data")
                lines.append(
                    f"  {p.label}: {p.wall_s:.2f}s wall, "
                    f"{p.events:,} events ({rate})"
                )
        degraded = [p for p in self.points if p.status is not None]
        if degraded:
            lines.append(
                f"degraded {len(degraded)} point(s) "
                "(wall dominated by the error policy, not simulation):"
            )
            for p in degraded[:n]:
                lines.append(
                    f"  {p.label}: {p.wall_s:.2f}s wall [{p.status}]"
                )
            if len(degraded) > n:
                lines.append(f"  ... and {len(degraded) - n} more")
        return lines

    def summary(self):
        """One-paragraph sweep summary for CLI / benchmark output."""
        text = (
            f"{self.done}/{self.total} points in {self.elapsed_s:.2f}s "
            f"wall ({self.cache_hits} cached, {self.computed} computed, "
            f"{self.compute_wall_s:.2f}s simulating); "
            f"total simulated time {self.simulated_ns / 1e6:.3f} ms"
        )
        if self.degraded:
            text += f"; {self.degraded} degraded/failed"
        return text
