"""Prediction service tier ladder and graceful degradation.

The contract under test: every accepted request resolves to a cached
answer, a DES answer, or a tier-0 model answer flagged
``model_fallback`` — overload (429) is the *only* failure surfaced to
clients, and only before acceptance.  Worker crashes, timeouts, open
breakers, and corrupt caches all degrade, never error.

Most tests drive :meth:`PredictionService.predict_task` with
:class:`FaultyTask` so no DES runs; the query-document path
(:meth:`predict`) is covered by fast ``tier="model"`` and cpu/gpu
queries plus the HTTP suite.
"""

import threading
import time

import pytest

from repro.runtime import (
    CircuitBreaker,
    FaultyTask,
    QueueSaturated,
    ResultCache,
    ServiceFaultInjector,
    cache_key,
)
from repro.runtime.service import PredictionService, parse_query

pytestmark = pytest.mark.timeout(120)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(directory=tmp_path / "cache")


def make_service(cache=None, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("default_deadline_s", 60.0)
    return PredictionService(cache, **kwargs)


def task_for(tmp_path, name, plan=("ok",), hang_s=3600.0):
    return FaultyTask(name=name, scratch=str(tmp_path / "scratch"),
                      plan=tuple(plan), hang_s=hang_s)


def wait_for_backfill(cache, key, timeout=60.0):
    """Block until the scheduler backfills ``key`` into the cache."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cache.get(key) is not None:
            return
        time.sleep(0.02)
    raise AssertionError(f"cache entry {key} never backfilled")


class TestParseQuery:
    def test_minimal(self):
        query = parse_query({"dataset": "products", "k": 64})
        assert query["embedding_dim"] == 64
        assert query["platform"] == "piuma"
        assert query["tier"] == "auto"

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown query field"):
            parse_query({"dataset": "products", "k": 8, "bogus": 1})

    def test_rejects_missing_dataset_or_k(self):
        with pytest.raises(ValueError, match="dataset"):
            parse_query({"k": 8})
        with pytest.raises(ValueError, match="embedding dimension"):
            parse_query({"dataset": "products"})

    def test_rejects_both_k_spellings(self):
        with pytest.raises(ValueError, match="not both"):
            parse_query({"dataset": "products", "k": 8,
                         "embedding_dim": 8})

    def test_rejects_bad_platform_tier_and_values(self):
        with pytest.raises(ValueError, match="platform"):
            parse_query({"dataset": "products", "k": 8,
                         "platform": "tpu"})
        with pytest.raises(ValueError, match="tier"):
            parse_query({"dataset": "products", "k": 8, "tier": "turbo"})
        with pytest.raises(ValueError):
            parse_query({"dataset": "products", "k": 0})
        with pytest.raises(ValueError):
            parse_query({"dataset": "products", "k": 8,
                         "deadline_s": -1})

    def test_degradation_preset_and_severity(self):
        query = parse_query({"dataset": "products", "k": 8,
                             "degradation": "moderate"})
        assert query["degradation"] is not None
        query = parse_query({"dataset": "products", "k": 8,
                             "degradation": {"severity": 0.5}})
        assert query["degradation"] is not None
        with pytest.raises(ValueError, match="preset"):
            parse_query({"dataset": "products", "k": 8,
                         "degradation": "catastrophic"})


class TestTierLadder:
    def test_tier2_then_tier1(self, tmp_path, cache):
        service = make_service(cache)
        try:
            task = task_for(tmp_path, "ladder")
            first = service.predict_task(task)
            assert first["tier"] == 2
            assert first["source"] == "simulation"
            assert first["degraded"] is None
            second = service.predict_task(task)
            assert second["tier"] == 1
            assert second["source"] == "simulation"
            assert task.attempts_made() == 1
        finally:
            service.close()

    def test_tier_model_never_schedules(self, tmp_path, cache):
        service = make_service(cache)
        try:
            task = task_for(tmp_path, "pure0")
            answer = service.predict_task(task, tier="model")
            assert answer["tier"] == 0
            assert answer["source"] == "model"
            assert task.attempts_made() == 0
            assert service.scheduler.stats.accepted == 0
        finally:
            service.close()

    def test_no_cache_still_serves(self, tmp_path):
        service = make_service(cache=None)
        try:
            task = task_for(tmp_path, "nocache")
            assert service.predict_task(task)["tier"] == 2
            # No tier 1 without a cache: runs again.
            assert service.predict_task(task)["tier"] == 2
            assert task.attempts_made() == 2
        finally:
            service.close()

    def test_fallback_answers_are_never_cached(self, tmp_path, cache):
        service = make_service(cache, retries=0)
        try:
            task = task_for(tmp_path, "nf", plan=("crash",))
            answer = service.predict_task(task)
            assert answer["source"] == "model_fallback"
            assert len(cache) == 0
        finally:
            service.close()


class TestCoalescing:
    def test_n_clients_one_execution(self, tmp_path, cache):
        service = make_service(cache)
        try:
            slow = task_for(tmp_path, "fanin", plan=("hang",), hang_s=0.8)
            barrier = threading.Barrier(6)
            answers = []

            def client():
                barrier.wait(timeout=30)
                answers.append(service.predict_task(slow))

            threads = [threading.Thread(target=client) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert len(answers) == 6
            assert {a["tier"] for a in answers} <= {1, 2}
            assert all(a["source"] == "simulation" for a in answers)
            # The acceptance criterion: exactly one DES execution.
            assert slow.attempts_made() == 1
        finally:
            service.close()


class TestGracefulDegradation:
    def test_deadline_expiry_returns_model_fallback_then_backfills(
        self, tmp_path, cache
    ):
        service = make_service(cache)
        try:
            slow = task_for(tmp_path, "dl", plan=("hang",), hang_s=0.6)
            answer = service.predict_task(slow, deadline_s=0.05)
            assert answer["tier"] == 0
            assert answer["source"] == "model_fallback"
            assert answer["degraded"] == "deadline"
            assert answer["pending"] is True
            # The run was not cancelled: it completes and backfills,
            # so the retry is a cache hit with the *simulated* record.
            key = cache.key_for(slow.key_payload())
            wait_for_backfill(cache, key)
            retry = service.predict_task(slow)
            assert retry["tier"] == 1
            assert retry["source"] == "simulation"
        finally:
            service.close()

    def test_terminal_failure_degrades_with_error_payload(
        self, tmp_path, cache
    ):
        service = make_service(cache, retries=0)
        try:
            task = task_for(tmp_path, "tf", plan=("crash",))
            answer = service.predict_task(task)
            assert answer["tier"] == 0
            assert answer["source"] == "model_fallback"
            assert answer["degraded"] == "failed:crash"
            assert answer["record"]["error"]["kind"] == "crash"
        finally:
            service.close()

    def test_crash_burst_trips_breaker_then_recovers(self, tmp_path, cache):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=10.0,
                                 clock=lambda: clock[0])
        faults = ServiceFaultInjector()
        service = make_service(cache, breaker=breaker, faults=faults,
                               retries=0)
        try:
            faults.arm("worker_crash_burst", 2)
            for i in range(2):
                answer = service.predict_task(task_for(tmp_path, f"b{i}"))
                assert answer["degraded"] == "failed:crash"
            assert faults.fired("worker_crash_burst") == 2
            assert breaker.state == "open"
            # While open: instant tier-0 degradation, no scheduling.
            accepted_before = service.scheduler.stats.accepted
            blocked = service.predict_task(task_for(tmp_path, "blocked"))
            assert blocked["degraded"] == "circuit_open"
            assert blocked["source"] == "model_fallback"
            assert blocked["retry_after_s"] > 0
            assert service.scheduler.stats.accepted == accepted_before
            # Cooldown elapses; the half-open probe succeeds (the burst
            # is exhausted) and the breaker closes.
            clock[0] += 11.0
            probe = service.predict_task(task_for(tmp_path, "probe"))
            assert probe["tier"] == 2
            assert probe["source"] == "simulation"
            assert breaker.state == "closed"
        finally:
            service.close()


class TestAdmissionControl:
    def test_saturation_raises_429_material(self, tmp_path, cache):
        service = make_service(cache, workers=1, max_pending=2)
        try:
            slow = [task_for(tmp_path, f"q{i}", plan=("hang",), hang_s=0.5)
                    for i in range(3)]
            pending = []
            for task in slow[:2]:
                pending.append((task, service.predict_task(task,
                                                           deadline_s=0.0)))
            with pytest.raises(QueueSaturated) as excinfo:
                service.predict_task(slow[2])
            assert excinfo.value.retry_after_s >= 1.0
            # Accepted requests are never dropped: both pending jobs
            # finish and backfill even though their waiters left.
            for task, answer in pending:
                assert answer["pending"] is True
                key = cache.key_for(task.key_payload())
                wait_for_backfill(cache, key)
                assert cache.get(key)["source"] == "simulation"
        finally:
            service.close()

    def test_injected_queue_full_fault(self, tmp_path, cache):
        faults = ServiceFaultInjector()
        service = make_service(cache, faults=faults)
        try:
            faults.arm("queue_full", 1)
            with pytest.raises(QueueSaturated):
                service.predict_task(task_for(tmp_path, "inj"))
            # One-shot: the next identical request is served normally.
            answer = service.predict_task(task_for(tmp_path, "inj"))
            assert answer["source"] == "simulation"
            assert faults.fired("queue_full") == 1
        finally:
            service.close()


class TestQueryPath:
    def test_model_tier_piuma_query(self, cache):
        service = make_service(cache)
        try:
            answer = service.predict({"dataset": "products", "k": 8,
                                      "max_vertices": 1024,
                                      "tier": "model"})
            assert answer["tier"] == 0
            assert answer["source"] == "model"
            assert answer["record"]["gflops"] > 0
        finally:
            service.close()

    def test_degraded_model_answer_is_derated(self, cache):
        service = make_service(cache)
        try:
            healthy = service.predict({"dataset": "products", "k": 8,
                                       "max_vertices": 1024,
                                       "tier": "model"})
            degraded = service.predict({"dataset": "products", "k": 8,
                                        "max_vertices": 1024,
                                        "tier": "model",
                                        "degradation": "severe"})
            assert (degraded["record"]["gflops"]
                    < healthy["record"]["gflops"])
        finally:
            service.close()

    @pytest.mark.parametrize("platform", ["cpu", "gpu"])
    def test_platform_queries_are_tier0(self, cache, platform):
        service = make_service(cache)
        try:
            answer = service.predict({"dataset": "products", "k": 8,
                                      "max_vertices": 1024,
                                      "platform": platform})
            assert answer["tier"] == 0
            assert answer["platform"] == platform
            assert answer["record"]["gflops"] > 0
            assert answer["record"]["bound"]
        finally:
            service.close()

    def test_bad_query_counts_and_raises(self, cache):
        service = make_service(cache)
        try:
            with pytest.raises(ValueError):
                service.predict({"dataset": "products"})
            assert service.counters["bad_requests"] == 1
        finally:
            service.close()


class TestHealthz:
    def test_structure_and_counters(self, tmp_path, cache):
        service = make_service(cache)
        try:
            service.predict_task(task_for(tmp_path, "h"))
            service.predict_task(task_for(tmp_path, "h"))
            health = service.healthz()
            assert health["status"] == "ok"
            assert health["breaker"]["state"] == "closed"
            assert health["scheduler"]["counters"]["completed"] == 1
            assert health["counters"]["tier2"] == 1
            assert health["counters"]["tier1"] == 1
            assert health["cache"]["entries"] == 1
            assert health["fault_injections"]["queue_full"] == \
                {"armed": 0, "fired": 0}
            assert health["quarantined_cache_entries"] == 0
        finally:
            service.close()

    def test_status_degraded_while_breaker_open(self, tmp_path, cache):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=300.0)
        service = make_service(cache, breaker=breaker, retries=0)
        try:
            service.predict_task(task_for(tmp_path, "sick",
                                          plan=("crash",)))
            assert service.healthz()["status"] == "degraded"
        finally:
            service.close()


class TestCrashSafeRestart:
    def test_restart_against_corrupted_cache_dir(self, tmp_path, cache):
        """A SIGKILL'd service leaves a possibly-truncated cache; a new
        service over the same directory must quarantine, re-simulate,
        and keep serving — never fail a request on a corrupt entry."""
        service = make_service(cache)
        task = task_for(tmp_path, "surv")
        service.predict_task(task)
        service.close()
        # Simulate the kill: truncate the entry mid-file.
        key = cache.key_for(task.key_payload())
        path = cache.directory / f"{key}.json"
        path.write_text(path.read_text()[: path.stat().st_size // 2])

        fresh_cache = ResultCache(directory=cache.directory)
        restarted = make_service(fresh_cache)
        try:
            with pytest.warns(RuntimeWarning, match="quarantined"):
                answer = restarted.predict_task(task)
            # The corrupt entry degraded to a miss -> re-simulated.
            assert answer["tier"] == 2
            assert answer["source"] == "simulation"
            assert fresh_cache.stats.corrupt == 1
            assert fresh_cache.quarantined() == 1
            # And the backfilled entry serves the next hit.
            assert restarted.predict_task(task)["tier"] == 1
        finally:
            restarted.close()
