"""HTTP frontend contract: structured JSON on every path.

Acceptance property under test: the server never returns an
unstructured 5xx — overload is 429 + ``Retry-After``, malformed input
is a 400 document, unknown paths are 404 documents, and good queries
answer from the tier ladder.  All tests run against an ephemeral-port
server with the DES tier either untouched (``tier=model``) or faulted.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.runtime import ResultCache, ServiceFaultInjector
from repro.runtime.service import PredictionService, make_server

pytestmark = pytest.mark.timeout(120)


@pytest.fixture
def stack(tmp_path):
    faults = ServiceFaultInjector()
    service = PredictionService(
        ResultCache(directory=tmp_path / "cache"),
        workers=1, default_deadline_s=60.0, faults=faults,
    )
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    yield f"http://127.0.0.1:{port}", service, faults
    server.shutdown()
    server.server_close()
    service.close()


def get(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, dict(response.headers), json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.load(error)


def post(url, document):
    body = (document if isinstance(document, bytes)
            else json.dumps(document).encode("utf-8"))
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.load(error)


MODEL_QUERY = {"dataset": "products", "k": 8, "max_vertices": 1024,
               "tier": "model"}


class TestPredict:
    def test_post_model_tier(self, stack):
        base, _service, _faults = stack
        status, _headers, doc = post(f"{base}/predict", MODEL_QUERY)
        assert status == 200
        assert doc["tier"] == 0
        assert doc["source"] == "model"
        assert doc["record"]["gflops"] > 0

    def test_get_flat_params(self, stack):
        base, _service, _faults = stack
        status, _headers, doc = get(
            f"{base}/predict?dataset=products&k=8&max_vertices=1024"
            "&tier=model"
        )
        assert status == 200
        assert doc["tier"] == 0

    def test_get_with_json_degradation_param(self, stack):
        base, _service, _faults = stack
        status, _headers, doc = get(
            f"{base}/predict?dataset=products&k=8&max_vertices=1024"
            "&tier=model&degradation=severe"
        )
        assert status == 200
        assert doc["record"]["degradation"]["seed"] is not None

    def test_platform_gpu(self, stack):
        base, _service, _faults = stack
        status, _headers, doc = post(
            f"{base}/predict",
            {"dataset": "products", "k": 8, "max_vertices": 1024,
             "platform": "gpu"},
        )
        assert status == 200
        assert doc["platform"] == "gpu"
        assert doc["tier"] == 0


class TestStructuredErrors:
    def test_unknown_field_is_400(self, stack):
        base, _service, _faults = stack
        status, _headers, doc = post(
            f"{base}/predict", {"dataset": "products", "k": 8, "bogus": 1}
        )
        assert status == 400
        assert doc["error"]["kind"] == "bad_request"
        assert "bogus" in doc["error"]["message"]

    def test_invalid_body_is_400(self, stack):
        base, _service, _faults = stack
        status, _headers, doc = post(f"{base}/predict", b"{not json")
        assert status == 400
        assert doc["error"]["kind"] == "bad_request"

    def test_unknown_dataset_is_400(self, stack):
        base, _service, _faults = stack
        status, _headers, doc = post(
            f"{base}/predict", {"dataset": "reddit", "k": 8,
                                "tier": "model"}
        )
        assert status == 400

    def test_unknown_path_is_404(self, stack):
        base, _service, _faults = stack
        for status, _headers, doc in (get(f"{base}/nope"),
                                      post(f"{base}/nope", {})):
            assert status == 404
            assert doc["error"]["kind"] == "not_found"
            assert "/predict" in doc["error"]["endpoints"]

    def test_saturation_is_429_with_retry_after(self, stack):
        base, _service, faults = stack
        faults.arm("queue_full", 1)
        status, headers, doc = post(
            f"{base}/predict",
            {"dataset": "products", "k": 8, "max_vertices": 1024},
        )
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert doc["error"]["kind"] == "saturated"
        assert doc["error"]["retry_after_s"] >= 1.0


class TestHealthz:
    def test_health_document(self, stack):
        base, _service, _faults = stack
        post(f"{base}/predict", MODEL_QUERY)
        status, _headers, doc = get(f"{base}/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["breaker"]["state"] == "closed"
        assert doc["scheduler"]["max_pending"] == 32
        assert doc["counters"]["requests"] >= 1
        assert doc["cache"]["enabled"] is True

    def test_rejections_visible_in_health(self, stack):
        base, _service, faults = stack
        faults.arm("queue_full", 1)
        post(f"{base}/predict",
             {"dataset": "products", "k": 8, "max_vertices": 1024})
        _status, _headers, doc = get(f"{base}/healthz")
        assert doc["counters"]["rejected"] == 1
        assert doc["fault_injections"]["queue_full"]["fired"] == 1
        assert doc["fault_injections"]["queue_full"]["armed"] == 0

    def test_armed_faults_visible_before_firing(self, stack):
        """An operator must see armed-but-unfired injections: the gap
        between ``armed`` and ``fired`` is the chaos still pending."""
        base, _service, faults = stack
        faults.arm("queue_full", 3)
        faults.arm("worker_crash_burst", 2)
        _status, _headers, doc = get(f"{base}/healthz")
        injections = doc["fault_injections"]
        assert injections["queue_full"] == {"armed": 3, "fired": 0}
        assert injections["worker_crash_burst"] == {"armed": 2,
                                                    "fired": 0}
        assert injections["slow_cache_io"]["armed"] == 0

    def test_quarantined_cache_entries_visible(self, stack):
        """A corrupt cache entry quarantined on read shows up in the
        health document (cache-integrity early-warning signal)."""
        base, service, _faults = stack
        _status, _headers, doc = get(f"{base}/healthz")
        assert doc["quarantined_cache_entries"] == 0
        key = service.cache.key_for({"probe": 1})
        service.cache.put(key, {"source": "simulation", "gflops": 1.0},
                          payload={"probe": 1})
        path = service.cache._path(key)
        path.write_text("{torn json")
        assert service.cache.get(key) is None  # quarantines
        _status, _headers, doc = get(f"{base}/healthz")
        assert doc["quarantined_cache_entries"] == 1
        assert doc["status"] == "ok"


class TestGracefulShutdown:
    def test_sigterm_drains_in_flight_jobs(self, tmp_path):
        """A termination signal stops the accept loop, finishes the
        in-flight tier-2 job, and closes cleanly — the submitted work
        is never dropped."""
        from repro.runtime.service import GracefulShutdown
        from repro.runtime.runner import spmm_task

        service = PredictionService(
            ResultCache(directory=tmp_path / "cache"),
            workers=1, default_deadline_s=60.0,
        )
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        shutdown = GracefulShutdown(server, service, drain_timeout_s=60.0)
        try:
            task = spmm_task("products", 4, max_vertices=512, seed=3)
            key = service.cache.key_for(task.key_payload())
            job = service.scheduler.submit(task, key=key)
            shutdown.trigger(None, None)  # as the signal handler would
            assert shutdown.requested.is_set()
            thread.join(30.0)
            assert not thread.is_alive()  # accept loop exited
            assert shutdown.drain() is True
            assert job.wait(0.0)
            assert job.error is None
            assert job.record["source"] == "simulation"
            counters = service.scheduler.stats.snapshot()
            assert counters["accepted"] == counters["completed"]
        finally:
            server.server_close()
            service.close()

    def test_trigger_is_idempotent(self, tmp_path):
        from repro.runtime.service import GracefulShutdown

        service = PredictionService(None, workers=1)
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        shutdown = GracefulShutdown(server, service, drain_timeout_s=5.0)
        try:
            import signal

            shutdown.trigger(signal.SIGTERM, None)
            shutdown.trigger(signal.SIGTERM, None)  # second is a no-op
            assert shutdown.signal_name == "SIGTERM"
            thread.join(30.0)
            assert not thread.is_alive()
            assert shutdown.drain() is True
        finally:
            server.server_close()
            service.close()

    def test_install_and_uninstall_restore_handlers(self, tmp_path):
        import signal

        from repro.runtime.service import GracefulShutdown

        service = PredictionService(None, workers=1)
        server = make_server(service)
        before = signal.getsignal(signal.SIGTERM)
        shutdown = GracefulShutdown(server, service).install()
        try:
            assert signal.getsignal(signal.SIGTERM) == shutdown.trigger
        finally:
            shutdown.uninstall()
            server.server_close()
            service.close()
        assert signal.getsignal(signal.SIGTERM) == before
