"""Checkpoint/resume: incremental flush, torn tails, killed parents.

The manifest is the last line of defense for long campaigns: records
flush as they complete, a SIGKILL'd parent leaves a readable manifest,
and ``--resume`` recomputes only the unfinished points.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.runtime import FaultyTask, SweepCheckpoint, TaskError, run_sweep

FAST = dict(backoff_s=0.0, jitter=0.0)


def make_tasks(tmp_path, names, plans=None):
    scratch = str(tmp_path / "scratch")
    plans = plans or {}
    return [
        FaultyTask(name=name, scratch=scratch,
                   plan=tuple(plans.get(name, ("ok",))))
        for name in names
    ]


class TestManifest:
    def test_flush_and_load_round_trip(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "m.jsonl")
        ckpt.flush("k1", {"value": 1})
        ckpt.flush("k2", {"value": 2})
        assert ckpt.load() == {"k1": {"value": 1}, "k2": {"value": 2}}
        assert len(ckpt) == 2

    def test_torn_tail_is_skipped(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "m.jsonl")
        ckpt.flush("k1", {"value": 1})
        with open(ckpt.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "rec')  # writer died mid-append
        assert ckpt.load() == {"k1": {"value": 1}}

    def test_missing_manifest_loads_empty(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "absent.jsonl")
        assert ckpt.load() == {}
        assert not ckpt.exists()

    def test_for_tasks_is_content_addressed(self, tmp_path):
        tasks = make_tasks(tmp_path, ["a", "b"])
        again = SweepCheckpoint.for_tasks(tasks, directory=tmp_path)
        assert SweepCheckpoint.for_tasks(
            tasks, directory=tmp_path
        ).path == again.path
        other = SweepCheckpoint.for_tasks(tasks[:1], directory=tmp_path)
        assert other.path != again.path

    def test_discard_removes_manifest(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "m.jsonl")
        ckpt.flush("k", {})
        assert ckpt.discard()
        assert not ckpt.exists()
        assert not ckpt.discard()


class TestResume:
    def test_resume_skips_completed_points(self, tmp_path):
        tasks = make_tasks(tmp_path, ["a", "b", "c", "d"])
        ckpt = SweepCheckpoint.for_tasks(tasks, directory=tmp_path)
        run_sweep(tasks[:2], workers=1, checkpoint=ckpt)
        assert len(ckpt) == 2
        report = run_sweep(tasks, workers=1, checkpoint=ckpt, resume=True)
        assert report.resumed == 2
        assert [r["name"] for r in report.records] == ["a", "b", "c", "d"]
        # The resumed points never re-ran.
        assert tasks[0].attempts_made() == 1
        assert tasks[1].attempts_made() == 1

    def test_abort_flushes_completed_then_resume_finishes(self, tmp_path):
        # Inline order a, b, c: c raises and aborts the sweep; a and b
        # are already durable in the manifest.
        tasks = make_tasks(tmp_path, ["a", "b", "c"],
                           plans={"c": ("raise", "ok")})
        ckpt = SweepCheckpoint.for_tasks(tasks, directory=tmp_path)
        with pytest.raises(TaskError):
            run_sweep(tasks, workers=1, retries=0, checkpoint=ckpt, **FAST)
        assert len(ckpt) == 2
        report = run_sweep(tasks, workers=1, retries=0, checkpoint=ckpt,
                           resume=True, **FAST)
        assert report.resumed == 2
        assert report.records[2]["attempt"] == 2

    def test_without_resume_flag_manifest_is_ignored(self, tmp_path):
        tasks = make_tasks(tmp_path, ["a", "b"])
        ckpt = SweepCheckpoint.for_tasks(tasks, directory=tmp_path)
        run_sweep(tasks, workers=1, checkpoint=ckpt)
        report = run_sweep(tasks, workers=1, checkpoint=ckpt, resume=False)
        assert report.resumed == 0
        assert tasks[0].attempts_made() == 2


class TestParentSigkill:
    """Acceptance: SIGKILL the sweep parent, resume, recompute the rest."""

    def test_sigkill_mid_sweep_then_resume(self, tmp_path):
        scratch = str(tmp_path / "scratch")
        manifest = str(tmp_path / "killed.manifest.jsonl")
        names = ["a", "b", "hang"]
        plans = {"hang": ("hang", "ok")}

        script = textwrap.dedent(f"""
            from repro.runtime import FaultyTask, SweepCheckpoint, run_sweep

            tasks = [
                FaultyTask(name=name, scratch={scratch!r},
                           plan=tuple({plans!r}.get(name, ("ok",))))
                for name in {names!r}
            ]
            run_sweep(tasks, workers=1,
                      checkpoint=SweepCheckpoint({manifest!r}))
        """)
        import pathlib

        src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else src
        )
        child = subprocess.Popen([sys.executable, "-c", script], env=env)
        try:
            ckpt = SweepCheckpoint(manifest)
            deadline = time.time() + 60
            while len(ckpt) < 2:  # a and b flushed, child hanging on c
                assert time.time() < deadline, "child never checkpointed"
                assert child.poll() is None, "child exited early"
                time.sleep(0.1)
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()

        tasks = [
            FaultyTask(name=name, scratch=scratch,
                       plan=tuple(plans.get(name, ("ok",))))
            for name in names
        ]
        report = run_sweep(tasks, workers=1,
                           checkpoint=SweepCheckpoint(manifest),
                           resume=True)
        assert report.resumed == 2
        assert [r["name"] for r in report.records] == names
        # Only the interrupted point re-ran (its "ok" second attempt).
        assert report.records[2]["attempt"] == 2
