"""Circuit-breaker state machine, driven by a fake clock.

Every transition — trip, cooldown, half-open probe, recovery, re-trip —
is exercised deterministically: the breaker takes an injectable clock,
so no test sleeps.
"""

import pytest

from repro.runtime.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0,
                          half_open_probes=1, clock=clock)


class TestTrip:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_at_threshold(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.snapshot()["trips"] == 1

    def test_success_resets_consecutive_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_rejections_counted(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        breaker.allow()
        breaker.allow()
        assert breaker.snapshot()["rejections"] == 2


class TestRecovery:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN

    def test_half_open_after_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_probe_budget_is_bounded(self, breaker, clock):
        self._trip(breaker)
        clock.advance(10.1)
        assert breaker.allow()       # the single probe slot
        assert not breaker.allow()   # no second concurrent probe

    def test_probe_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self, breaker, clock):
        self._trip(breaker)
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        # The re-trip restarts the cooldown from the probe failure.
        clock.advance(10.1)
        assert breaker.state == HALF_OPEN

    def test_full_cycle_counts_two_trips(self, breaker, clock):
        self._trip(breaker)
        clock.advance(10.1)
        breaker.allow()
        breaker.record_failure()
        clock.advance(10.1)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.snapshot()["trips"] == 2


class TestObservability:
    def test_retry_after_counts_down(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after_s() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.retry_after_s() == pytest.approx(6.0)

    def test_retry_after_zero_when_closed(self, breaker):
        assert breaker.retry_after_s() == 0.0

    def test_snapshot_shape(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["failure_threshold"] == 3
        assert snap["failures"] == 3
        assert snap["open_for_s"] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=-1.0)
