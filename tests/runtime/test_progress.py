"""ProgressTracker metrics accounting."""

from repro.runtime import ProgressTracker


def fake_clock():
    state = {"t": 0.0}

    def advance(dt):
        state["t"] += dt

    def now():
        return state["t"]

    return now, advance


class TestProgressTracker:
    def test_counters_split_cached_and_computed(self):
        tracker = ProgressTracker(total=3)
        tracker.point_done("a", 1.5, 100.0, cached=False)
        tracker.point_done("b", 0.0, 200.0, cached=True)
        tracker.point_done("c", 2.5, 300.0, cached=False)
        assert tracker.done == 3
        assert tracker.cache_hits == 1
        assert tracker.computed == 2
        assert tracker.compute_wall_s == 4.0
        assert tracker.simulated_ns == 600.0

    def test_live_lines_distinguish_cache_hits(self):
        lines = []
        tracker = ProgressTracker(total=2, out=lines.append)
        tracker.point_done("pt-a", 1.0, 1e6, cached=False)
        tracker.point_done("pt-b", 0.0, 2e6, cached=True)
        assert lines[0].startswith("[1/2] pt-a:")
        assert "1.00s" in lines[0]
        assert "(cache)" in lines[1]

    def test_summary_reports_all_metrics(self):
        now, advance = fake_clock()
        tracker = ProgressTracker(total=2, clock=now)
        tracker.point_done("a", 1.0, 5e5, cached=False)
        tracker.point_done("b", 0.0, 5e5, cached=True)
        advance(3.0)
        summary = tracker.summary()
        assert "2/2 points" in summary
        assert "3.00s wall" in summary
        assert "1 cached" in summary
        assert "1 computed" in summary
        assert "1.000 ms" in summary

    def test_silent_without_out(self):
        tracker = ProgressTracker(total=1, out=None)
        metrics = tracker.point_done("a", 0.5, 10.0, cached=False)
        assert metrics.label == "a"
        assert metrics.wall_s == 0.5


class TestDegradedPointAccounting:
    """Degraded points (status set) must not pollute host-perf views:
    their wall-clock measures timeout waits and retry backoff, not the
    simulator."""

    def _tracker(self):
        tracker = ProgressTracker(total=5, out=None)
        tracker.point_done("fast", 0.2, 1e5, cached=False,
                           events=2000, host_wall_s=0.2)
        tracker.point_done("slow", 3.0, 9e5, cached=False,
                           events=9000, host_wall_s=3.0)
        tracker.point_done("hit", 0.0, 5e5, cached=True)
        tracker.point_done("stuck", 30.0, 0.0, cached=False,
                           status="failed")
        tracker.point_done("derated", 12.0, 2e5, cached=False,
                           status="model_fallback")
        return tracker

    def test_slowest_excludes_degraded_and_cached(self):
        slowest = self._tracker().slowest(5)
        # "stuck" (30 s) and "derated" (12 s) dwarf every healthy point
        # but must not appear: their wall is the error policy's.
        assert [p.label for p in slowest] == ["slow", "fast"]

    def test_degraded_counter(self):
        assert self._tracker().degraded == 2

    def test_profile_lines_tag_degraded_points(self):
        lines = self._tracker().profile_lines()
        slowest_block = [l for l in lines if l.startswith("  ")
                         and "[" not in l]
        assert not any("stuck" in l or "derated" in l
                       for l in slowest_block)
        tagged = [l for l in lines if "[failed]" in l
                  or "[model_fallback]" in l]
        assert len(tagged) == 2
        assert any("stuck: 30.00s wall [failed]" in l for l in tagged)
        assert any(l.startswith("degraded 2 point(s)") for l in lines)

    def test_profile_lines_cap_degraded_listing(self):
        tracker = ProgressTracker(total=8, out=None)
        for i in range(8):
            tracker.point_done(f"p{i}", 1.0, 0.0, cached=False,
                               status="failed")
        lines = tracker.profile_lines(n=5)
        assert "  ... and 3 more" in lines

    def test_summary_counts_degraded(self):
        assert "2 degraded/failed" in self._tracker().summary()
