"""ProgressTracker metrics accounting."""

from repro.runtime import ProgressTracker


def fake_clock():
    state = {"t": 0.0}

    def advance(dt):
        state["t"] += dt

    def now():
        return state["t"]

    return now, advance


class TestProgressTracker:
    def test_counters_split_cached_and_computed(self):
        tracker = ProgressTracker(total=3)
        tracker.point_done("a", 1.5, 100.0, cached=False)
        tracker.point_done("b", 0.0, 200.0, cached=True)
        tracker.point_done("c", 2.5, 300.0, cached=False)
        assert tracker.done == 3
        assert tracker.cache_hits == 1
        assert tracker.computed == 2
        assert tracker.compute_wall_s == 4.0
        assert tracker.simulated_ns == 600.0

    def test_live_lines_distinguish_cache_hits(self):
        lines = []
        tracker = ProgressTracker(total=2, out=lines.append)
        tracker.point_done("pt-a", 1.0, 1e6, cached=False)
        tracker.point_done("pt-b", 0.0, 2e6, cached=True)
        assert lines[0].startswith("[1/2] pt-a:")
        assert "1.00s" in lines[0]
        assert "(cache)" in lines[1]

    def test_summary_reports_all_metrics(self):
        now, advance = fake_clock()
        tracker = ProgressTracker(total=2, clock=now)
        tracker.point_done("a", 1.0, 5e5, cached=False)
        tracker.point_done("b", 0.0, 5e5, cached=True)
        advance(3.0)
        summary = tracker.summary()
        assert "2/2 points" in summary
        assert "3.00s wall" in summary
        assert "1 cached" in summary
        assert "1 computed" in summary
        assert "1.000 ms" in summary

    def test_silent_without_out(self):
        tracker = ProgressTracker(total=1, out=None)
        metrics = tracker.point_done("a", 0.5, 10.0, cached=False)
        assert metrics.label == "a"
        assert metrics.wall_s == 0.5
