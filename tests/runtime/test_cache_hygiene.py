"""Crash-safety and size hygiene of the shared result cache.

The serving tier shares one cache directory across sweep workers, the
prediction service, and possibly a SIGKILL'd previous incarnation of
any of them.  These tests pin the two hygiene mechanisms that makes
that safe: corrupt-entry *quarantine* (a truncated or garbage entry
becomes a miss plus an inert ``*.corrupt`` file, never an exception)
and the *LRU size budget* (``max_bytes`` eviction with an atomic
summary manifest).
"""

import json
import os

import pytest

from repro.runtime import ResultCache
from repro.runtime.cache import MANIFEST_NAME


@pytest.fixture
def cache(tmp_path):
    return ResultCache(directory=tmp_path / "cache")


def entry_path(cache, key):
    return cache.directory / f"{key}.json"


class TestQuarantine:
    def test_truncated_entry_quarantined(self, cache):
        """Regression: a writer SIGKILL'd mid-``os.replace`` window (or a
        torn filesystem) leaves a half-written JSON file; reading it
        must degrade to a miss and move the file aside."""
        cache.put("k", {"payload": "x" * 256})
        path = entry_path(cache, "k")
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get("k") is None
        assert not path.exists()
        assert (cache.directory / "k.json.corrupt").exists()
        assert cache.stats.corrupt == 1
        assert cache.quarantined() == 1

    def test_empty_entry_quarantined(self, cache):
        cache.put("k", {"v": 1})
        entry_path(cache, "k").write_text("")
        with pytest.warns(RuntimeWarning):
            assert cache.get("k") is None
        assert cache.quarantined() == 1

    def test_entry_without_record_field_quarantined(self, cache):
        cache.put("k", {"v": 1})
        entry_path(cache, "k").write_text(json.dumps({"salt": "x"}))
        with pytest.warns(RuntimeWarning):
            assert cache.get("k") is None
        assert cache.quarantined() == 1

    def test_warns_once_then_silent(self, cache):
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        for key in ("a", "b"):
            entry_path(cache, key).write_text("garbage")
        with pytest.warns(RuntimeWarning) as caught:
            assert cache.get("a") is None
            assert cache.get("b") is None
        quarantine_warnings = [
            w for w in caught if "quarantined" in str(w.message)
        ]
        assert len(quarantine_warnings) == 1
        assert cache.stats.corrupt == 2

    def test_quarantined_entry_can_be_rewritten(self, cache):
        cache.put("k", {"v": 1})
        entry_path(cache, "k").write_text("garbage")
        with pytest.warns(RuntimeWarning):
            cache.get("k")
        cache.put("k", {"v": 2})
        assert cache.get("k") == {"v": 2}

    def test_plain_miss_is_not_a_quarantine(self, cache):
        assert cache.get("never-written") is None
        assert cache.stats.corrupt == 0
        assert cache.quarantined() == 0

    def test_corrupt_files_never_count_as_entries(self, cache):
        cache.put("k", {"v": 1})
        entry_path(cache, "k").write_text("garbage")
        with pytest.warns(RuntimeWarning):
            cache.get("k")
        assert len(cache) == 0
        assert cache.entries() == []

    def test_clear_sweeps_quarantined_files(self, cache):
        cache.put("k", {"v": 1})
        entry_path(cache, "k").write_text("garbage")
        with pytest.warns(RuntimeWarning):
            cache.get("k")
        cache.clear()
        assert cache.quarantined() == 0


def fill_entries(cache, keys, mtime_base=1_000):
    """Write same-shaped entries with strictly increasing mtimes.

    Returns the (uniform) per-entry file size, so tests can express
    budgets as entry multiples instead of guessing byte overheads.
    """
    for i, key in enumerate(keys):
        cache.put(key, {"fill": "x" * 300})
        os.utime(entry_path(cache, key),
                 (mtime_base + i, mtime_base + i))
    return entry_path(cache, keys[0]).stat().st_size


class TestSizeBudget:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(directory=tmp_path, max_bytes=0)

    def test_put_evicts_least_recently_used(self, cache):
        size = fill_entries(cache, ("old", "mid", "new"))
        # Room for three and a half entries: the fourth put must evict
        # exactly the least recently used one.
        cache.max_bytes = int(size * 3.5)
        cache.put("newest", {"fill": "x" * 300})
        assert cache.get("old") is None
        assert cache.get("newest") is not None
        assert cache.stats.evictions == 1
        assert cache.total_bytes() <= cache.max_bytes

    def test_hit_refreshes_recency(self, cache):
        size = fill_entries(cache, ("a", "b", "c"))
        # Touch the oldest: it must survive the next eviction pass.
        assert cache.get("a") is not None
        os.utime(entry_path(cache, "b"), (900, 900))
        cache.max_bytes = int(size * 3.5)
        cache.put("d", {"fill": "x" * 300})
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_just_written_key_is_protected(self, tmp_path):
        # A record bigger than the whole budget still lands; the cache
        # ends over budget rather than evicting what it just wrote.
        cache = ResultCache(directory=tmp_path / "c", max_bytes=100)
        cache.put("big", {"fill": "x" * 500})
        assert cache.get("big") is not None

    def test_explicit_gc_with_budget_argument(self, cache):
        size = fill_entries(cache, tuple(f"k{i}" for i in range(4)))
        assert cache.gc(max_bytes=int(size * 2.5)) == 2
        assert cache.total_bytes() <= int(size * 2.5)

    def test_gc_without_budget_is_a_noop(self, cache):
        cache.put("k", {"v": 1})
        assert cache.gc() == 0
        assert cache.get("k") is not None


class TestManifest:
    def test_written_after_eviction_and_readable(self, cache):
        size = fill_entries(cache, tuple(f"k{i}" for i in range(4)))
        budget = int(size * 2.5)
        cache.gc(max_bytes=budget)
        manifest = cache.read_manifest()
        assert manifest is not None
        assert manifest["max_bytes"] == budget
        assert manifest["evicted_last_gc"] == 2
        assert manifest["bytes"] <= budget

    def test_manifest_is_not_an_entry(self, cache):
        size = fill_entries(cache, tuple(f"k{i}" for i in range(4)))
        cache.gc(max_bytes=int(size * 2.5))
        assert MANIFEST_NAME in os.listdir(cache.directory)
        assert all(key.startswith("k") for key, _s, _m in cache.entries())
        assert len(cache) == 2

    def test_corrupt_manifest_reads_as_none(self, cache):
        cache.directory.mkdir(parents=True, exist_ok=True)
        cache.manifest_path.write_text("{torn")
        assert cache.read_manifest() is None

    def test_clear_removes_manifest(self, cache):
        size = fill_entries(cache, tuple(f"k{i}" for i in range(4)))
        cache.gc(max_bytes=int(size * 2.5))
        cache.clear()
        assert cache.read_manifest() is None


class TestStatsString:
    def test_mentions_hygiene_counters_only_when_nonzero(self, cache):
        assert "quarantined" not in str(cache.stats)
        assert "evicted" not in str(cache.stats)
        size = fill_entries(cache, tuple(f"k{i}" for i in range(4)))
        cache.gc(max_bytes=int(size * 2.5))
        cache.put("bad", {"v": 1})
        entry_path(cache, "bad").write_text("garbage")
        with pytest.warns(RuntimeWarning):
            cache.get("bad")
        text = str(cache.stats)
        assert "quarantined" in text
        assert "evicted" in text
