"""Resume bit-identity under real SIGKILL, on every engine backend.

Satellite of the chaos PR (DESIGN.md §13): a checkpointed sweep is
run in a child process, SIGKILLed mid-run at three different seeded
points (after 1, 2, and 3 completed manifest lines), then resumed
in-process with ``resume=True``.  The resumed records must be
bit-identical — on every deterministic field — to an unfaulted run of
the same grid, across all five engine backends (the DES engines are
pure functions of their inputs, so a kill/resume must be invisible in
the results).  The in-process ``kill_resume`` emulation lives in
``repro.runtime.chaos``; this is the real-signal version.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.runtime.chaos import record_identity
from repro.runtime.checkpoint import SweepCheckpoint
from repro.runtime.runner import run_sweep, spmm_task
from repro.testing.oracle import ENGINE_BACKENDS

pytestmark = [pytest.mark.slow, pytest.mark.timeout(600)]

_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

#: The sweep under the axe: four small points, one per (kernel, K).
_GRID = (("dma", 4), ("dma", 8), ("loop", 4), ("loop", 8))

_CHILD = """
import json
import sys
import time
from dataclasses import dataclass

sys.path.insert(0, {src!r})

from repro.runtime.checkpoint import SweepCheckpoint
from repro.runtime.runner import run_sweep, spmm_task


@dataclass(frozen=True)
class SlowTask:
    # Same cache/checkpoint identity as the victim; the pause between
    # points just widens the window for the parent's SIGKILL.
    victim: object
    delay_s: float

    def label(self):
        return self.victim.label()

    def key_payload(self):
        return self.victim.key_payload()

    def run(self):
        time.sleep(self.delay_s)
        return self.victim.run()

    def fallback_record(self, error=None):
        return self.victim.fallback_record(error)


knobs = json.loads(sys.argv[1])
grid = json.loads(sys.argv[2])
manifest_dir = sys.argv[3]
tasks = [
    spmm_task("products", k, kernel=kernel, max_vertices=512, seed=3,
              **knobs)
    for kernel, k in grid
]
checkpoint = SweepCheckpoint.for_tasks(tasks, directory=manifest_dir)
run_sweep([SlowTask(task, 0.3) for task in tasks], workers=1,
          checkpoint=checkpoint)
"""


def _tasks(knobs):
    return [
        spmm_task("products", k, kernel=kernel, max_vertices=512,
                  seed=3, **knobs)
        for kernel, k in _GRID
    ]


_BASELINES = {}


def _baseline(engine):
    if engine not in _BASELINES:
        report = run_sweep(_tasks(dict(ENGINE_BACKENDS[engine])),
                           workers=1)
        _BASELINES[engine] = report.records
    return _BASELINES[engine]


def _kill_after(n_lines, knobs, manifest_dir, script_path):
    """Run the child sweep; SIGKILL it once ``n_lines`` points are
    durably in the manifest.  Returns the manifest line count seen."""
    script_path.write_text(_CHILD.format(src=os.path.abspath(_SRC)))
    child = subprocess.Popen(
        [sys.executable, str(script_path), json.dumps(knobs),
         json.dumps(list(_GRID)), str(manifest_dir)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    manifest = SweepCheckpoint.for_tasks(_tasks(knobs),
                                         directory=manifest_dir)
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            if child.poll() is not None:
                pytest.fail(
                    f"child finished (rc={child.returncode}) before "
                    f"reaching kill point {n_lines}"
                )
            if len(manifest.load()) >= n_lines:
                break
            time.sleep(0.02)
        else:
            pytest.fail("child never reached the kill point")
        os.kill(child.pid, signal.SIGKILL)
        child.wait(30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(30)
    assert child.returncode == -signal.SIGKILL
    return len(manifest.load())


@pytest.mark.parametrize("engine", sorted(ENGINE_BACKENDS))
@pytest.mark.parametrize("kill_point", (1, 2, 3))
def test_sigkill_resume_is_bit_identical(engine, kill_point, tmp_path):
    knobs = dict(ENGINE_BACKENDS[engine])
    flushed = _kill_after(kill_point, knobs, tmp_path,
                          tmp_path / "child.py")
    assert flushed >= kill_point

    tasks = _tasks(knobs)
    checkpoint = SweepCheckpoint.for_tasks(tasks, directory=tmp_path)
    report = run_sweep(tasks, workers=1, checkpoint=checkpoint,
                       resume=True)

    # Everything the killed child durably completed was restored, not
    # recomputed; and every record — restored or recomputed — is
    # bit-identical to the unfaulted sweep.
    assert report.resumed == flushed
    baseline = _baseline(engine)
    assert len(report.records) == len(baseline)
    for got, want in zip(report.records, baseline):
        assert got["source"] == "simulation"
        assert record_identity(got) == record_identity(want)
