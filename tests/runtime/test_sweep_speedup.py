"""Acceptance demo: the cached, parallel runner is actually faster.

Cold-vs-warm is asserted everywhere (cache hits skip simulation
entirely, a >=5x win on any machine).  The process-pool speedup is only
asserted on machines with >=4 CPUs — fork/IPC overhead on a single
core would measure the pool, not the parallelism — but the byte-
identity of parallel results is asserted unconditionally in
``test_runner.py``.
"""

import json
import os
import time

import pytest

from repro.runtime import ResultCache, run_sweep, spmm_task

pytestmark = pytest.mark.slow

#: A sweep heavy enough that per-point DES time (~seconds total)
#: dominates pool startup, but well under a minute sequentially.
TASKS = [
    spmm_task("products", k, max_vertices=4096, seed=1, n_cores=cores)
    for cores in (2, 4)
    for k in (32, 64, 128)
]


def test_warm_cache_rerun_is_5x_faster(tmp_path):
    cache = ResultCache(directory=tmp_path)

    start = time.perf_counter()
    cold = run_sweep(TASKS, workers=1, cache=cache)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_sweep(TASKS, workers=1, cache=cache)
    warm_s = time.perf_counter() - start

    assert cold.cache_misses == len(TASKS)
    assert warm.cache_hits == len(TASKS)
    assert json.dumps(cold.records, sort_keys=True) == json.dumps(
        warm.records, sort_keys=True
    )
    assert cold_s > 5 * warm_s, (cold_s, warm_s)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel wall-clock speedup needs >=4 CPUs",
)
def test_cold_parallel_beats_sequential():
    start = time.perf_counter()
    sequential = run_sweep(TASKS, workers=1)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_sweep(TASKS, workers=4)
    parallel_s = time.perf_counter() - start

    assert parallel.workers == 4
    assert json.dumps(sequential.records, sort_keys=True) == json.dumps(
        parallel.records, sort_keys=True
    )
    assert parallel_s < sequential_s, (parallel_s, sequential_s)
