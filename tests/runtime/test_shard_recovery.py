"""The per-shard failure model: retry, hedging, partial assembly.

DESIGN.md §13: a multi-node run is a set of independent failure
domains (one per shard).  :func:`run_shards` gives each domain a
bounded retry budget, speculatively re-executes stragglers (first
result wins, the loser is cancelled), and — when a domain exhausts its
budget under the default ``"fallback"`` policy — degrades that shard
to its Eq.5 estimate with ``"source": "shard_fallback"`` provenance so
the assembly completes with an explicit degraded-envelope verdict
instead of aborting the whole campaign.
"""

import pytest

from repro.piuma.config import PIUMAConfig
from repro.piuma.multinode import (
    multinode_verdict,
    run_multinode,
)
from repro.runtime.cache import ResultCache
from repro.runtime.chaos import ChaoticTask
from repro.runtime.checkpoint import SweepCheckpoint
from repro.runtime.errors import TaskError
from repro.runtime.faults import FaultyTask
from repro.runtime.shard import (
    ON_EXHAUSTED_POLICIES,
    ShardRecovery,
    ShardRunReport,
    run_shards,
    shard_tasks,
)

pytestmark = pytest.mark.timeout(300)


def _faulty(scratch, name, plan, **kwargs):
    return FaultyTask(name=name, scratch=str(scratch), plan=plan,
                      **kwargs)


class TestShardRecoverySpec:
    def test_defaults(self):
        spec = ShardRecovery()
        assert spec.retries == 1
        assert spec.on_exhausted == "fallback"
        assert spec.hedge_after_s is None

    @pytest.mark.parametrize("bad", [
        {"retries": -1},
        {"on_exhausted": "explode"},
        {"hedge_factor": 1.0},
    ])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            ShardRecovery(**bad)

    def test_policies_constant(self):
        assert set(ON_EXHAUSTED_POLICIES) == {"fallback", "raise"}


class TestBoundedRetry:
    def test_injected_exception_recovers_on_retry(self, tmp_path):
        tasks = [_faulty(tmp_path, "flaky", ("raise", "ok")),
                 _faulty(tmp_path, "steady", ("ok",))]
        report = run_shards(tasks, ShardRecovery(retries=2), workers=2)
        assert isinstance(report, ShardRunReport)
        assert [r["source"] for r in report.records] == \
            ["simulation", "simulation"]
        assert report.records[0]["recovery"]["attempts"] >= 2
        assert report.recovery["retries"] >= 1
        assert not report.failures

    def test_worker_crash_recovers_on_retry(self, tmp_path):
        tasks = [_faulty(tmp_path, "boom", ("crash", "ok")),
                 _faulty(tmp_path, "calm", ("ok",))]
        report = run_shards(tasks, ShardRecovery(retries=2), workers=2)
        assert [r["source"] for r in report.records] == \
            ["simulation", "simulation"]
        assert report.recovery["crashes"] >= 1

    def test_exhausted_budget_degrades_to_fallback(self, tmp_path):
        tasks = [_faulty(tmp_path, "dead", ("raise",)),
                 _faulty(tmp_path, "fine", ("ok",))]
        report = run_shards(tasks, ShardRecovery(retries=1), workers=2)
        assert report.records[0]["source"] == "model_fallback"
        assert report.records[1]["source"] == "simulation"
        assert report.recovery["fallbacks"] == 1
        assert len(report.failures) == 1
        assert report.failures[0]["label"] == "fault:dead"

    def test_on_exhausted_raise_propagates(self, tmp_path):
        tasks = [_faulty(tmp_path, "fatal", ("raise",))]
        with pytest.raises(TaskError):
            run_shards(
                tasks,
                ShardRecovery(retries=0, on_exhausted="raise"),
                workers=2,
            )

    def test_timeout_kills_and_retries(self, tmp_path):
        # hedge_after_s is pinned high so the adaptive hedger does not
        # rescue the hung shard first — this test wants the timeout.
        tasks = [_faulty(tmp_path, "stuck", ("hang", "ok")),
                 _faulty(tmp_path, "quick", ("ok",))]
        report = run_shards(
            tasks,
            ShardRecovery(retries=2, timeout=3.0, hedge_after_s=60.0),
            workers=2,
        )
        assert [r["source"] for r in report.records] == \
            ["simulation", "simulation"]
        assert report.recovery["timeouts"] >= 1

    def test_inline_path_retries_without_a_pool(self, tmp_path):
        tasks = [_faulty(tmp_path, "solo", ("raise", "ok"))]
        report = run_shards(tasks, ShardRecovery(retries=1), workers=1)
        assert report.workers == 1
        assert report.records[0]["source"] == "simulation"


class TestHedging:
    def test_straggler_loses_to_hedge(self, tmp_path):
        """The primary hangs; the speculative duplicate finishes first
        and wins, and the hung loser is cancelled, not awaited."""
        tasks = [
            _faulty(tmp_path, "slow", ("hang", "ok"), hang_s=60.0),
            _faulty(tmp_path, "a", ("ok",)),
            _faulty(tmp_path, "b", ("ok",)),
        ]
        report = run_shards(
            tasks,
            ShardRecovery(retries=1, timeout=120.0, hedge_after_s=0.3),
            workers=2,
        )
        assert report.wall_s < 60.0
        assert all(r["source"] == "simulation" for r in report.records)
        assert report.recovery["hedges_launched"] >= 1
        assert report.recovery["hedges_won"] >= 1
        assert report.records[0]["recovery"]["hedged"] is True
        assert report.records[0]["recovery"]["winner"] == "hedge"

    def test_no_hedges_without_stragglers(self, tmp_path):
        tasks = [_faulty(tmp_path, f"t{i}", ("ok",)) for i in range(3)]
        report = run_shards(
            tasks, ShardRecovery(retries=1, hedge_after_s=30.0),
            workers=2,
        )
        assert report.recovery["hedges_launched"] == 0
        assert all(r["recovery"]["hedged"] is False
                   for r in report.records)


class TestCacheAndCheckpoint:
    def test_cache_hits_resolve_without_execution(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = [_faulty(tmp_path / "m1", "warm", ("ok",))]
        first = run_shards(tasks, ShardRecovery(), workers=1,
                           cache=cache)
        # Second run would raise if executed — the cache answers.
        rerun = [_faulty(tmp_path / "m2", "warm", ("ok",))]
        second = run_shards(rerun, ShardRecovery(), workers=1,
                            cache=cache)
        assert second.cache_hits == 1
        assert second.records == first.records

    def test_fallback_records_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = [_faulty(tmp_path / "m", "dud", ("raise",))]
        report = run_shards(tasks, ShardRecovery(retries=0), workers=1,
                            cache=cache)
        assert report.records[0]["source"] == "model_fallback"
        assert cache.get(cache.key_for(tasks[0].key_payload())) is None

    def test_resume_restores_completed_shards(self, tmp_path):
        tasks = [_faulty(tmp_path / "m1", f"p{i}", ("ok",))
                 for i in range(2)]
        checkpoint = SweepCheckpoint.for_tasks(
            tasks, directory=tmp_path / "ckpt"
        )
        run_shards(tasks, ShardRecovery(), workers=1,
                   checkpoint=checkpoint)
        rerun = [_faulty(tmp_path / "m2", f"p{i}", ("ok",))
                 for i in range(2)]
        report = run_shards(rerun, ShardRecovery(), workers=1,
                            checkpoint=checkpoint, resume=True)
        assert report.resumed == 2


_POINT = dict(max_vertices=2048, seed=0)


def _sabotage(plans, scratch):
    def apply(tasks):
        return [
            ChaoticTask(victim=task, name=f"s{i}", scratch=str(scratch),
                        plan=plans.get(i, ("ok",)), hang_s=60.0)
            for i, task in enumerate(tasks)
        ]
    return apply


class TestPartialAssembly:
    @pytest.fixture(scope="class")
    def baseline(self):
        estimate, _report = run_multinode(
            "products", 4, sweep_kwargs={"workers": 2}, **_POINT
        )
        return estimate

    def test_clean_recovery_run_is_bit_identical(self, baseline,
                                                 tmp_path):
        estimate, report = run_multinode(
            "products", 4, sweep_kwargs={"workers": 2},
            recovery=ShardRecovery(retries=1), **_POINT
        )
        assert estimate.time_ns == baseline.time_ns
        assert estimate.per_shard_ns == baseline.per_shard_ns
        assert estimate.degraded_shards == 0
        assert not estimate.degraded
        verdict = multinode_verdict(estimate, PIUMAConfig())
        assert verdict["verdict"] == "ok"
        assert verdict["widened"] == 1.0

    def test_dead_shard_degrades_instead_of_raising(self, baseline,
                                                    tmp_path):
        """One permanently failed shard: the run completes, the failed
        shard carries shard_fallback provenance, conservation still
        sums exactly, and the verdict is an explicit ``degraded``."""
        estimate, report = run_multinode(
            "products", 4, sweep_kwargs={"workers": 2},
            recovery=ShardRecovery(retries=1),
            task_filter=_sabotage({2: ("raise",)}, tmp_path), **_POINT
        )
        assert estimate.degraded
        assert estimate.degraded_shards == 1
        assert estimate.shard_sources[2] == "shard_fallback"
        assert estimate.conserved == baseline.conserved
        # Surviving shards are untouched by the neighbor's death.
        for i in (0, 1, 3):
            assert estimate.per_shard_ns[i] == baseline.per_shard_ns[i]
        verdict = multinode_verdict(estimate, PIUMAConfig())
        assert verdict["verdict"] == "degraded"
        assert verdict["widened"] > 1.0
        assert verdict["degraded_shards"] == 1
        low, high = verdict["envelope"]
        assert low <= verdict["ratio"] <= high

    def test_crashed_shard_recovers_bit_identically(self, baseline,
                                                    tmp_path):
        estimate, report = run_multinode(
            "products", 4, sweep_kwargs={"workers": 2},
            recovery=ShardRecovery(retries=2),
            task_filter=_sabotage({0: ("crash", "ok")}, tmp_path),
            **_POINT
        )
        assert estimate.degraded_shards == 0
        assert estimate.time_ns == baseline.time_ns
        assert estimate.per_shard_ns == baseline.per_shard_ns
        assert report.recovery["crashes"] >= 1

    def test_without_recovery_a_dead_shard_still_raises(self, tmp_path):
        """The legacy path is unchanged: a skipped shard aborts the
        assembly, and the error now points at the recovery spec."""
        with pytest.raises(RuntimeError, match="ShardRecovery"):
            run_multinode(
                "products", 4,
                sweep_kwargs={"workers": 2, "on_error": "skip"},
                task_filter=_sabotage({1: ("raise",)}, tmp_path),
                **_POINT
            )

    def test_verdict_violated_outside_widened_envelope(self, baseline):
        """Even a degraded run is bounded: a ratio outside the widened
        envelope is still ``violated``, not silently excused."""
        verdict = multinode_verdict(baseline, PIUMAConfig(),
                                    kernel="vertex")
        # The dma-kernel estimate judged against the (tighter) vertex
        # envelope: the check itself must be live, whatever the verdict.
        assert verdict["verdict"] in ("ok", "violated")
        assert verdict["kernel"] == "vertex"
