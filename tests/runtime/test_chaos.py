"""The chaos orchestrator: deterministic schedules, verified recovery.

The campaign itself is the test fixture of record for fault
*composition* — these tests pin the orchestrator's own contracts:
schedules derive deterministically from the seed and round-trip
through JSON; the task wrapper preserves the victim's cache identity
(what every resume / bit-identity invariant rests on); and a full
campaign over all three frontends passes with zero lost accepted work.
"""

import json

import pytest

from repro.runtime.chaos import (
    BATCH_CHAOS_POINTS,
    CHAOS_FRONTENDS,
    CHAOS_IDENTITY_FIELDS,
    ChaosSchedule,
    ChaoticTask,
    record_identity,
    run_chaos,
)
from repro.runtime.errors import SimulationDiverged
from repro.runtime.runner import spmm_task

pytestmark = pytest.mark.timeout(600)


class TestChaoticTask:
    def test_key_payload_is_the_victims(self, tmp_path):
        victim = spmm_task("products", 8, max_vertices=512, seed=3)
        wrapped = ChaoticTask(victim=victim, name="w", plan=("ok",),
                              scratch=str(tmp_path))
        assert wrapped.key_payload() == victim.key_payload()
        assert victim.label() in wrapped.label()

    def test_ok_attempt_runs_the_victim(self, tmp_path):
        victim = spmm_task("products", 8, max_vertices=512, seed=3)
        wrapped = ChaoticTask(victim=victim, name="w", plan=("ok",),
                              scratch=str(tmp_path))
        assert record_identity(wrapped.run()) == \
            record_identity(victim.run())
        assert wrapped.attempts_made() == 1

    def test_plan_script_survives_across_instances(self, tmp_path):
        """Attempt markers live on disk, so a respawned process (a new
        deserialized instance) continues the same script."""
        victim = spmm_task("products", 8, max_vertices=512, seed=3)
        first = ChaoticTask(victim=victim, name="w",
                            plan=("raise", "ok"), scratch=str(tmp_path))
        with pytest.raises(RuntimeError, match="injected"):
            first.run()
        clone = ChaoticTask(victim=victim, name="w",
                            plan=("raise", "ok"), scratch=str(tmp_path))
        assert clone.run()["source"] == "simulation"

    def test_diverge_raises_unretryable(self, tmp_path):
        victim = spmm_task("products", 8, max_vertices=512, seed=3)
        wrapped = ChaoticTask(victim=victim, name="d",
                              plan=("diverge",), scratch=str(tmp_path))
        with pytest.raises(SimulationDiverged):
            wrapped.run()

    def test_rejects_unknown_behaviors(self, tmp_path):
        victim = spmm_task("products", 8, max_vertices=512, seed=3)
        with pytest.raises(ValueError):
            ChaoticTask(victim=victim, name="x", plan=("explode",),
                        scratch=str(tmp_path))
        with pytest.raises(ValueError):
            ChaoticTask(victim=victim, name="x", plan=(),
                        scratch=str(tmp_path))

    def test_forwards_fallback_records(self, tmp_path):
        victim = spmm_task("products", 8, max_vertices=512, seed=3)
        wrapped = ChaoticTask(victim=victim, name="f", plan=("ok",),
                              scratch=str(tmp_path))
        assert wrapped.fallback_record(None)["source"] == \
            "model_fallback"


class TestChaosSchedule:
    def test_same_seed_same_schedule(self):
        a = ChaosSchedule.generate(7, rounds=2)
        b = ChaosSchedule.generate(7, rounds=2)
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        seen = {json.dumps(ChaosSchedule.generate(s, rounds=2).to_json(),
                           sort_keys=True)
                for s in range(6)}
        assert len(seen) > 1

    def test_cells_are_independent_streams(self):
        """Adding rounds or dropping frontends never perturbs the
        events of the other (frontend, round) cells."""
        one = ChaosSchedule.generate(5, rounds=1)
        two = ChaosSchedule.generate(5, rounds=2)
        assert [e for e in two.events if e["round"] == 0] == one.events
        solo = ChaosSchedule.generate(5, frontends=("batch",), rounds=1)
        assert solo.events == [e for e in one.events
                               if e["frontend"] == "batch"]

    def test_json_round_trip(self):
        schedule = ChaosSchedule.generate(3, rounds=2)
        wire = json.loads(json.dumps(schedule.to_json()))
        again = ChaosSchedule.from_json(wire)
        assert again.to_json() == schedule.to_json()

    def test_every_cell_has_the_acceptance_faults(self):
        schedule = ChaosSchedule.generate(11, rounds=3)
        for rnd in range(3):
            batch = {e["point"]
                     for e in schedule.for_round("batch", rnd)}
            assert "kill_resume" in batch
            service = {e["point"]
                       for e in schedule.for_round("service", rnd)}
            assert "worker_crash_burst" in service
            multinode = {e["point"]
                         for e in schedule.for_round("multinode", rnd)}
            assert "shard_dead" in multinode

    def test_points_are_known(self):
        schedule = ChaosSchedule.generate(0, rounds=2)
        for event in schedule.events:
            if event["frontend"] == "batch":
                assert event["point"] in BATCH_CHAOS_POINTS

    def test_from_json_rejects_unknown_points(self):
        with pytest.raises(ValueError, match="fault point"):
            ChaosSchedule.from_json({
                "seed": 0,
                "events": [{"round": 0, "frontend": "batch",
                            "point": "meteor_strike"}],
            })
        with pytest.raises(ValueError, match="frontend"):
            ChaosSchedule.from_json({
                "seed": 0,
                "events": [{"round": 0, "frontend": "mainframe",
                            "point": "worker_crash"}],
            })

    def test_generate_rejects_unknown_frontend(self):
        with pytest.raises(ValueError, match="unknown frontend"):
            ChaosSchedule.generate(0, frontends=("mainframe",))


class TestIdentityProjection:
    def test_excludes_host_clock_fields(self):
        assert "host_wall_s" not in CHAOS_IDENTITY_FIELDS
        assert "events_per_s" not in CHAOS_IDENTITY_FIELDS
        record = {"sim_time_ns": 1.0, "host_wall_s": 0.2, "events": 9}
        twin = {"sim_time_ns": 1.0, "host_wall_s": 99.0, "events": 9}
        assert record_identity(record) == record_identity(twin)

    def test_detects_simulated_drift(self):
        record = {"sim_time_ns": 1.0}
        drifted = {"sim_time_ns": 1.5}
        assert record_identity(record) != record_identity(drifted)


@pytest.mark.slow
class TestCampaign:
    def test_full_campaign_passes_with_zero_lost_work(self, tmp_path):
        """The acceptance run: every frontend, one seeded round — all
        invariants hold and no accepted work is lost."""
        verdict = run_chaos(seed=0, rounds=1, workdir=tmp_path)
        assert verdict["passed"] is True
        assert verdict["stats"]["lost"] == 0
        assert verdict["stats"]["injected"] >= 6
        assert set(verdict["results"]) == set(CHAOS_FRONTENDS)
        batch = verdict["results"]["batch"][0]["invariants"]
        assert batch["no_lost_work"]["passed"]
        assert batch["bit_identity"]["passed"]
        assert batch["checkpoint_consistent"]["passed"]
        service = verdict["results"]["service"][0]["invariants"]
        assert service["breaker_closes"]["passed"]
        assert service["no_lost_work"]["passed"]
        multinode = verdict["results"]["multinode"][0]["invariants"]
        assert multinode["shard_fallback_provenance"]["passed"]
        assert multinode["degraded_envelope_verdict"]["passed"]
        assert multinode["conservation_exact"]["passed"]

    def test_schedule_replay_reproduces_the_verdict_shape(self,
                                                          tmp_path):
        """Replaying an explicit schedule document drives exactly the
        scheduled faults (the ``--schedule`` contract)."""
        schedule = {
            "seed": 42,
            "rounds": 1,
            "frontends": ["multinode"],
            "events": [
                {"round": 0, "frontend": "multinode",
                 "point": "shard_dead", "target": 3},
            ],
        }
        verdict = run_chaos(schedule=schedule,
                            frontends=("multinode",),
                            workdir=tmp_path)
        assert verdict["passed"] is True
        assert verdict["seed"] == 42
        row = verdict["results"]["multinode"][0]
        assert row["events"] == schedule["events"]
        assert row["stats"]["degraded_fallback"] == 1
        assert row["stats"]["verdict"]["verdict"] == "degraded"

    def test_cli_writes_artifact_and_exits_zero(self, tmp_path,
                                                capsys):
        from repro.cli import main

        artifact = tmp_path / "chaos.json"
        code = main([
            "chaos", "--seed", "1", "--frontend", "multinode",
            "--rounds", "1", "--artifact", str(artifact),
            "--workdir", str(tmp_path / "work"),
        ])
        assert code == 0
        doc = json.loads(artifact.read_text())
        assert doc["passed"] is True
        assert doc["schedule"]["events"]
        out = capsys.readouterr().out
        assert "PASSED" in out
