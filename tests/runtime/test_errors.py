"""Error-taxonomy contract: structure, pickling, normalization.

Workers raise these across the process boundary and the runner embeds
their payloads in records and manifests, so the round-trip fidelity of
every field is load-bearing.
"""

import pickle

import pytest

from repro.runtime.errors import (
    SimulationDiverged,
    TaskError,
    TaskTimeout,
    WorkerCrash,
    failure_record,
    wrap_failure,
)

ALL_TYPES = (TaskError, TaskTimeout, WorkerCrash, SimulationDiverged)


class TestTaxonomy:
    def test_all_types_are_task_errors(self):
        for cls in ALL_TYPES:
            assert issubclass(cls, TaskError)

    def test_kinds_are_distinct(self):
        kinds = {cls.kind for cls in ALL_TYPES}
        assert kinds == {"error", "timeout", "crash", "diverged"}

    def test_only_divergence_is_unretryable(self):
        assert not SimulationDiverged.retryable
        assert TaskError.retryable
        assert TaskTimeout.retryable
        assert WorkerCrash.retryable

    def test_payload_structure(self):
        error = TaskTimeout("no result after 5s", label="p/dma K=8",
                            attempts=3, cause="timeout=5")
        assert error.payload() == {
            "kind": "timeout",
            "message": "no result after 5s",
            "label": "p/dma K=8",
            "attempts": 3,
            "cause": "timeout=5",
        }

    def test_str_names_label_and_attempt(self):
        text = str(WorkerCrash("worker died", label="point-7", attempts=2))
        assert "worker died" in text
        assert "point-7" in text
        assert "attempt 2" in text


class TestPickling:
    @pytest.mark.parametrize("cls", ALL_TYPES)
    def test_round_trip_preserves_every_field(self, cls):
        error = cls("boom", label="task-x", attempts=4, cause="why")
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is cls
        assert clone.message == "boom"
        assert clone.label == "task-x"
        assert clone.attempts == 4
        assert clone.cause == "why"
        assert clone.payload() == error.payload()


class TestWrapFailure:
    def test_generic_exception_becomes_retryable_task_error(self):
        wrapped = wrap_failure(ValueError("bad input"), "lbl", 2)
        assert type(wrapped) is TaskError
        assert wrapped.retryable
        assert wrapped.label == "lbl"
        assert wrapped.attempts == 2
        assert "bad input" in wrapped.message
        assert "ValueError" in wrapped.cause

    def test_taxonomy_member_keeps_type_and_gains_context(self):
        original = SimulationDiverged("event ceiling", cause="max_events")
        wrapped = wrap_failure(original, "lbl", 1)
        assert type(wrapped) is SimulationDiverged
        assert not wrapped.retryable
        assert wrapped.label == "lbl"
        assert wrapped.attempts == 1
        assert wrapped.cause == "max_events"

    def test_message_less_exception_uses_type_name(self):
        wrapped = wrap_failure(KeyError(), "lbl", 1)
        assert wrapped.message == "KeyError"


class TestFailureRecord:
    def test_structured_and_json_able(self):
        import json

        record = failure_record(
            WorkerCrash("died", label="p", attempts=2, cause="pool")
        )
        assert record["source"] == "failed"
        assert record["error"]["kind"] == "crash"
        assert record["sim_time_ns"] == 0.0
        json.dumps(record)
