"""Sweep-runner correctness: ordering, cache equivalence, parallelism.

The load-bearing property: however a sweep executes — sequentially, in
a process pool, cold, or from a warm cache — it returns records that
are *byte-identical* (canonical JSON) to each other and to the direct,
runner-free ``simulate_spmm`` path.
"""

import json
import os

import pytest

from repro.graphs.datasets import get_dataset
from repro.piuma import simulate_spmm
from repro.runtime import (
    ProgressTracker,
    ResultCache,
    SpMMTask,
    default_workers,
    run_sweep,
    spmm_task,
)

WINDOW = dict(max_vertices=512, seed=0, window_edges=512)


def small_tasks():
    return [
        spmm_task("products", k, **WINDOW, n_cores=cores)
        for cores in (1, 2)
        for k in (8, 16)
    ]


#: Host-side measurements of *this run* — wall-clock dependent by
#: nature, so excluded from the byte-identity comparisons (the
#: simulation content must still match to the last bit).
HOST_TIMING_FIELDS = ("host_wall_s", "events_per_s")


def canon(records):
    stripped = [
        {k: v for k, v in record.items() if k not in HOST_TIMING_FIELDS}
        for record in records
    ]
    return json.dumps(stripped, sort_keys=True)


class TestOrderingAndEquivalence:
    def test_records_follow_task_order(self):
        tasks = small_tasks()
        report = run_sweep(tasks, workers=1)
        assert len(report.records) == len(tasks)
        for task, record in zip(report.tasks, report.records):
            assert record["embedding_dim"] == task.embedding_dim

    def test_sequential_equals_direct_path(self):
        task = spmm_task("products", 8, **WINDOW, n_cores=2)
        record = run_sweep([task], workers=1).records[0]
        adj = get_dataset("products").materialize(max_vertices=512, seed=0)
        direct = simulate_spmm(adj, 8, task.config(), kernel="dma",
                               window_edges=512)
        assert record["gflops"] == direct.gflops
        assert record["projected_time_ns"] == direct.projected_time_ns
        assert record["window_edges"] == direct.window_edges

    def test_parallel_equals_sequential(self):
        """Process-pool execution must not change a single byte of the
        results, only the wall-clock."""
        tasks = small_tasks()
        sequential = run_sweep(tasks, workers=1)
        parallel = run_sweep(tasks, workers=4)
        assert parallel.workers >= 2
        assert canon(parallel.records) == canon(sequential.records)

    def test_warm_cache_equals_cold(self, tmp_path):
        tasks = small_tasks()
        cache = ResultCache(directory=tmp_path)
        cold = run_sweep(tasks, workers=1, cache=cache)
        warm = run_sweep(tasks, workers=1, cache=cache)
        assert cold.cache_misses == len(tasks) and cold.cache_hits == 0
        assert warm.cache_hits == len(tasks) and warm.cache_misses == 0
        assert canon(warm.records) == canon(cold.records)

    def test_changed_point_misses_warm_cache(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        run_sweep(small_tasks(), workers=1, cache=cache)
        changed = [
            spmm_task("products", k, **WINDOW, n_cores=cores,
                      dram_latency_ns=90.0)
            for cores in (1, 2)
            for k in (8, 16)
        ]
        report = run_sweep(changed, workers=1, cache=cache)
        assert report.cache_hits == 0

    def test_salt_bump_invalidates_whole_sweep(self, tmp_path):
        tasks = small_tasks()
        run_sweep(tasks, workers=1,
                  cache=ResultCache(directory=tmp_path, salt="v1"))
        report = run_sweep(tasks, workers=1,
                           cache=ResultCache(directory=tmp_path, salt="v2"))
        assert report.cache_hits == 0

    def test_partial_warm_sweep_mixes_hits_and_misses(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        tasks = small_tasks()
        run_sweep(tasks[:2], workers=1, cache=cache)
        report = run_sweep(tasks, workers=1, cache=cache)
        assert report.cache_hits == 2
        assert report.cache_misses == len(tasks) - 2
        # And the mixed run still matches an all-cold baseline.
        baseline = run_sweep(tasks, workers=1)
        assert canon(report.records) == canon(baseline.records)


class TestInstrumentation:
    def test_progress_tracker_sees_every_point(self, tmp_path):
        tasks = small_tasks()
        cache = ResultCache(directory=tmp_path)
        run_sweep(tasks, workers=1, cache=cache)
        lines = []
        progress = ProgressTracker(total=len(tasks), out=lines.append)
        report = run_sweep(tasks, workers=1, cache=cache,
                           progress=progress)
        assert progress.done == len(tasks)
        assert progress.cache_hits == len(tasks)
        assert len(lines) == len(tasks)
        assert all("cache" in line for line in lines)
        assert "4/4" in progress.summary()
        assert report.summary().startswith("4 point(s)")

    def test_record_schema(self):
        record = run_sweep(
            [spmm_task("products", 8, **WINDOW, n_cores=1)], workers=1
        ).records[0]
        for field in (
            "gflops", "projected_time_ns", "sim_time_ns",
            "memory_utilization", "achieved_bandwidth", "model_gflops",
            "model_time_ns", "efficiency", "tag_stats", "n_vertices",
            "n_edges", "window_edges", "total_edges",
        ):
            assert field in record, field
        # JSON-serializable end to end (no numpy scalars leaking out).
        json.dumps(record)
        for stats in record["tag_stats"].values():
            assert set(stats) == {"count", "bytes", "wait_ns"}

    def test_task_label_names_the_point(self):
        task = spmm_task("products", 64, **WINDOW, n_cores=4)
        label = task.label()
        assert "products" in label and "K=64" in label
        assert "n_cores=4" in label


class TestRobustnessSatellites:
    def test_default_workers_integer_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert default_workers() == 3

    def test_default_workers_non_integer_env_warns_and_falls_back(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_SWEEP_WORKERS"):
            workers = default_workers()
        assert workers == max(1, min(4, os.cpu_count() or 1))

    def test_overrides_must_be_field_value_pairs(self):
        with pytest.raises(TypeError):
            SpMMTask(dataset="products", embedding_dim=8,
                     overrides=("n_cores",))
        with pytest.raises(TypeError):
            SpMMTask(dataset="products", embedding_dim=8,
                     overrides=((2, "n_cores"),))
        with pytest.raises(TypeError):
            SpMMTask(dataset="products", embedding_dim=8,
                     overrides=(("n_cores", 2, 3),))
        # The canonical builder still produces valid tasks.
        assert spmm_task("products", 8, n_cores=2).overrides == (
            ("n_cores", 2),
        )

    def test_cache_put_failure_does_not_abort_sweep(
        self, monkeypatch, tmp_path
    ):
        cache = ResultCache(directory=tmp_path)

        def full_disk(key, record, payload=None):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache, "put", full_disk)
        task = spmm_task("products", 8, **WINDOW, n_cores=1)
        with pytest.warns(RuntimeWarning, match="cache write failed"):
            report = run_sweep([task], workers=1, cache=cache)
        assert report.records[0]["gflops"] > 0
        assert report.cache_misses == 1

    def test_records_carry_simulation_provenance(self):
        record = run_sweep(
            [spmm_task("products", 8, **WINDOW, n_cores=1)], workers=1
        ).records[0]
        assert record["source"] == "simulation"


class TestValidationIntegration:
    def test_calibration_via_runner_matches_inline_path(self):
        """The runner-backed calibrate CLI path must reproduce the
        original in-process calibration numbers exactly."""
        from repro.validation import (
            calibrate_spmm_efficiency,
            calibration_from_records,
            calibration_tasks,
        )

        adj = get_dataset("power-12").materialize(max_vertices=2048, seed=0)
        inline = calibrate_spmm_efficiency(
            adj, core_counts=(1, 2), embedding_dims=(8,)
        )
        tasks = calibration_tasks(
            "power-12", core_counts=(1, 2), embedding_dims=(8,),
            max_vertices=2048,
        )
        report = run_sweep(tasks, workers=1)
        routed = calibration_from_records(report.tasks, report.records)
        assert routed.mean_efficiency == pytest.approx(
            inline.mean_efficiency
        )
        assert [p.des_gflops for p in routed.points] == [
            p.des_gflops for p in inline.points
        ]
