"""The sharded-DES oracle: 1-shard identity and exact conservation.

Two contracts make the multi-node sharding trustworthy (DESIGN.md §12):

* a single-shard :class:`ShardTask` is *bit-identical* to the plain
  monolithic :class:`SpMMTask` on every engine backend — sharding adds
  no numerical surface of its own;
* the :func:`conserved_counters` of any K-shard decomposition sum
  exactly to the monolithic totals, whatever the partitioning strategy
  — no edge, byte, descriptor, or flop is created or lost at a shard
  boundary.
"""

import numpy as np
import pytest

from repro.graphs.rmat import RMATParams, rmat_graph
from repro.runtime.errors import TaskError
from repro.runtime.runner import spmm_task
from repro.runtime.shard import (
    ShardTask,
    aggregate_conserved,
    conserved_counters,
    shard_geometry,
    shard_subgraph,
    shard_tasks,
)
from repro.testing.oracle import ENGINE_BACKENDS

#: Kernel observables of the monolithic record schema that must be
#: bit-equal between a 1-shard task and the plain task.  Host-clock
#: fields (``host_wall_s``, ``events_per_s``) are deliberately absent:
#: they measure the machine running the test, not the simulation.
_BIT_FIELDS = (
    "n_vertices", "n_edges", "gflops", "projected_time_ns", "sim_time_ns",
    "window_edges", "total_edges", "memory_utilization",
    "achieved_bandwidth", "model_gflops", "model_time_ns", "efficiency",
    "events", "tag_stats", "scheduler", "engine",
)

_POINT = dict(dataset="arxiv", embedding_dim=32, max_vertices=1024, seed=3)


@pytest.fixture(scope="module")
def adj():
    return rmat_graph(RMATParams(scale=9, edge_factor=8), seed=11,
                      symmetric=True)


class TestShardSubgraph:
    def test_whole_range_reproduces_matrix(self, adj):
        sub = shard_subgraph(adj, 0, adj.n_rows)
        assert sub.shape == adj.shape
        assert np.array_equal(sub.indptr, adj.indptr)
        assert np.array_equal(sub.indices, adj.indices)
        assert np.array_equal(sub.data, adj.data)

    def test_slices_concatenate_to_whole(self, adj):
        mid = adj.n_rows // 2
        top = shard_subgraph(adj, 0, mid)
        bottom = shard_subgraph(adj, mid, adj.n_rows)
        assert top.n_rows + bottom.n_rows == adj.n_rows
        assert top.nnz + bottom.nnz == adj.nnz
        # Columns stay global: both halves keep the full column count.
        assert top.n_cols == bottom.n_cols == adj.n_cols
        assert np.array_equal(
            np.concatenate([top.indices, bottom.indices]), adj.indices
        )


class TestShardGeometry:
    @pytest.mark.parametrize("strategy", ["block", "degree"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_rows_edges_partition_exactly(self, adj, n_shards, strategy):
        infos = [
            shard_geometry(adj, n_shards, s, strategy)[1]
            for s in range(n_shards)
        ]
        assert sum(i["rows"] for i in infos) == adj.n_rows
        assert sum(i["edges"] for i in infos) == adj.nnz
        for info in infos:
            assert info["local_edges"] + info["cut_edges"] == info["edges"]
            assert sum(info["recv_edges_by_owner"]) == info["cut_edges"]
            # Deduplicated ghosts never exceed the cut edges that need
            # them, and a shard never ghosts its own vertices.
            assert info["ghost_vertices"] <= info["cut_edges"]
            assert info["recv_edges_by_owner"][info["shard"]] == 0
            assert info["ghosts_by_owner"][info["shard"]] == 0

    def test_single_shard_cuts_nothing(self, adj):
        _sub, info = shard_geometry(adj, 1, 0)
        assert info["cut_edges"] == 0
        assert info["ghost_vertices"] == 0
        assert info["local_edges"] == adj.nnz


class TestConservation:
    @pytest.mark.parametrize("strategy", ["block", "degree"])
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_shard_counters_sum_to_monolithic(self, n_shards, strategy):
        tasks = shard_tasks(
            "arxiv", 32, n_shards, strategy=strategy,
            max_vertices=1024, seed=3,
        )
        records = [task.run() for task in tasks]
        whole = spmm_task(**_POINT).run()
        expected = conserved_counters(
            whole["n_vertices"], whole["n_edges"], 32, tasks[0].config()
        )
        assert aggregate_conserved(records) == expected

    def test_counters_are_linear(self):
        from repro.piuma.config import PIUMAConfig

        config = PIUMAConfig()
        a = conserved_counters(10, 100, 64, config)
        b = conserved_counters(7, 33, 64, config)
        both = conserved_counters(17, 133, 64, config)
        assert {k: a[k] + b[k] for k in a} == both


class TestOneShardBitIdentity:
    @pytest.mark.parametrize("engine", sorted(ENGINE_BACKENDS))
    def test_identical_to_monolithic_on_every_engine(self, engine):
        knobs = dict(ENGINE_BACKENDS[engine])
        mono = spmm_task(**_POINT, **knobs).run()
        sharded = shard_tasks("arxiv", 32, 1, max_vertices=1024, seed=3,
                              **knobs)[0].run()
        for field in _BIT_FIELDS:
            assert sharded[field] == mono[field], field

    def test_cache_keys_never_alias(self):
        """Shard records carry extra schema, so even the bit-identical
        1-shard point must not share the monolithic cache entry."""
        mono = spmm_task(**_POINT)
        shard = shard_tasks("arxiv", 32, 1, max_vertices=1024, seed=3)[0]
        assert shard.key_payload() != mono.key_payload()
        assert shard.key_payload()["partition"] == {
            "n_shards": 1, "shard": 0, "strategy": "block",
        }


class TestShardTask:
    def test_validates_partition_coordinates(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardTask(dataset="arxiv", embedding_dim=32, n_shards=0)
        with pytest.raises(ValueError, match="shard"):
            ShardTask(dataset="arxiv", embedding_dim=32, n_shards=2, shard=2)
        with pytest.raises(ValueError, match="strategy"):
            ShardTask(dataset="arxiv", embedding_dim=32, n_shards=2,
                      shard=0, strategy="metis")

    def test_label_names_the_shard(self):
        task = shard_tasks("arxiv", 32, 4, strategy="degree")[2]
        assert "[shard 3/4 degree]" in task.label()

    def test_record_keeps_monolithic_schema(self):
        record = shard_tasks("arxiv", 32, 2, max_vertices=1024, seed=3)[0]
        record = record.run()
        mono = spmm_task(**_POINT).run()
        assert set(mono) <= set(record)
        assert record["shard"]["n_shards"] == 2
        assert record["conserved"]["edges"] == record["n_edges"]

    def test_fallback_record_keeps_geometry(self):
        task = shard_tasks("arxiv", 32, 2, max_vertices=1024, seed=3)[1]
        record = task.fallback_record(TaskError("boom", label=task.label()))
        assert record["source"] == "model_fallback"
        assert record["error"]["message"] == "boom"
        assert record["shard"]["shard"] == 1
        # The Eq.5 stand-in still prices the shard's own work, and the
        # halo volumes survive for the assembly.
        assert record["projected_time_ns"] > 0
        assert record["conserved"]["edges"] == record["shard"]["edges"]
