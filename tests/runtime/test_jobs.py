"""Online job scheduler: admission, coalescing, retries, breaker feed.

Uses :class:`FaultyTask` throughout — cheap, picklable, and scripted —
so every path (success, crash, hang, saturation) runs in real worker
processes without touching the simulator.
"""

import threading

import pytest

from repro.runtime import (
    CircuitBreaker,
    FaultyTask,
    JobScheduler,
    QueueSaturated,
    TaskError,
    WorkerCrash,
    cache_key,
)

pytestmark = pytest.mark.timeout(120)


def task_for(tmp_path, name, plan=("ok",), hang_s=3600.0):
    return FaultyTask(name=name, scratch=str(tmp_path), plan=tuple(plan),
                      hang_s=hang_s)


def key_of(task):
    return cache_key(task.key_payload())


class TestBasics:
    def test_submit_and_result(self, tmp_path):
        scheduler = JobScheduler(workers=1)
        try:
            job = scheduler.submit(task_for(tmp_path, "a"))
            record = job.result(timeout=60)
            assert record["source"] == "simulation"
            assert scheduler.stats.completed == 1
        finally:
            scheduler.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            JobScheduler(max_pending=0)
        with pytest.raises(ValueError):
            JobScheduler(retries=-1)

    def test_submit_after_close_refused(self, tmp_path):
        scheduler = JobScheduler(workers=1)
        scheduler.close()
        with pytest.raises(RuntimeError):
            scheduler.submit(task_for(tmp_path, "late"))

    def test_close_fails_pending_jobs_loudly(self, tmp_path):
        scheduler = JobScheduler(workers=1)
        slow = task_for(tmp_path, "slow", plan=("hang",), hang_s=30.0)
        job = scheduler.submit(slow)
        scheduler.close(drain=False)
        assert job.done
        with pytest.raises(TaskError):
            job.result()

    def test_close_drain_finishes_accepted_work(self, tmp_path):
        scheduler = JobScheduler(workers=1)
        jobs = [scheduler.submit(task_for(tmp_path, f"d{i}"))
                for i in range(3)]
        scheduler.close(drain=True, timeout=60)
        assert all(job.record is not None for job in jobs)


class TestCoalescing:
    def test_same_key_shares_one_job(self, tmp_path):
        scheduler = JobScheduler(workers=1)
        try:
            slow = task_for(tmp_path, "co", plan=("hang",), hang_s=1.0)
            key = key_of(slow)
            first = scheduler.submit(slow, key=key)
            second = scheduler.submit(slow, key=key)
            assert second is first
            assert first.waiters == 2
            assert scheduler.stats.coalesced == 1
            assert first.result(timeout=60)["source"] == "simulation"
            assert slow.attempts_made() == 1
        finally:
            scheduler.close()

    def test_key_none_never_coalesces(self, tmp_path):
        scheduler = JobScheduler(workers=2)
        try:
            task = task_for(tmp_path, "nc")
            a = scheduler.submit(task, key=None)
            b = scheduler.submit(task, key=None)
            assert a is not b
            a.result(timeout=60)
            b.result(timeout=60)
            assert task.attempts_made() == 2
        finally:
            scheduler.close()

    def test_finished_key_starts_a_fresh_job(self, tmp_path):
        scheduler = JobScheduler(workers=1)
        try:
            task = task_for(tmp_path, "re")
            key = key_of(task)
            scheduler.submit(task, key=key).result(timeout=60)
            again = scheduler.submit(task, key=key)
            again.result(timeout=60)
            assert task.attempts_made() == 2
        finally:
            scheduler.close()


class TestAdmission:
    def test_saturation_raises_with_retry_after(self, tmp_path):
        scheduler = JobScheduler(workers=1, max_pending=2)
        try:
            slow = [task_for(tmp_path, f"s{i}", plan=("hang",), hang_s=0.5)
                    for i in range(3)]
            accepted = [scheduler.submit(t, key=key_of(t)) for t in slow[:2]]
            with pytest.raises(QueueSaturated) as excinfo:
                scheduler.submit(slow[2], key=key_of(slow[2]))
            assert excinfo.value.retry_after_s >= 1.0
            assert excinfo.value.kind == "saturated"
            assert scheduler.stats.rejected_full == 1
            # The accepted requests are never dropped.
            for job in accepted:
                assert job.result(timeout=60)["source"] == "simulation"
        finally:
            scheduler.close()

    def test_coalescing_bypasses_a_full_queue(self, tmp_path):
        # A duplicate of an in-flight config adds no work, so it is
        # admitted even at the pending bound.
        scheduler = JobScheduler(workers=1, max_pending=1)
        try:
            slow = task_for(tmp_path, "dup", plan=("hang",), hang_s=0.5)
            key = key_of(slow)
            first = scheduler.submit(slow, key=key)
            second = scheduler.submit(slow, key=key)
            assert second is first
            first.result(timeout=60)
        finally:
            scheduler.close()


class TestFailures:
    def test_crash_then_retry_succeeds(self, tmp_path):
        scheduler = JobScheduler(workers=1, retries=1, backoff_s=0.01)
        try:
            task = task_for(tmp_path, "cr", plan=("crash", "ok"))
            record = scheduler.submit(task, key=key_of(task)).result(timeout=60)
            assert record["source"] == "simulation"
            assert scheduler.stats.crashes == 1
            assert scheduler.stats.retried == 1
        finally:
            scheduler.close()

    def test_crash_without_retries_is_terminal(self, tmp_path):
        scheduler = JobScheduler(workers=1, retries=0)
        try:
            task = task_for(tmp_path, "dead", plan=("crash",))
            job = scheduler.submit(task, key=key_of(task))
            with pytest.raises(WorkerCrash):
                job.result(timeout=60)
            assert scheduler.stats.failed == 1
        finally:
            scheduler.close()

    def test_timeout_kills_and_charges_the_hung_job(self, tmp_path):
        scheduler = JobScheduler(workers=1, timeout=0.5, retries=0,
                                 poll_s=0.02)
        try:
            task = task_for(tmp_path, "hung", plan=("hang",), hang_s=60.0)
            job = scheduler.submit(task, key=key_of(task))
            with pytest.raises(TaskError) as excinfo:
                job.result(timeout=60)
            assert excinfo.value.kind == "timeout"
            assert scheduler.stats.timeouts == 1
        finally:
            scheduler.close()

    def test_deterministic_failure_does_not_feed_breaker(self, tmp_path):
        breaker = CircuitBreaker(failure_threshold=1)
        scheduler = JobScheduler(workers=1, breaker=breaker)
        try:
            task = task_for(tmp_path, "div", plan=("diverge",))
            job = scheduler.submit(task, key=key_of(task))
            with pytest.raises(TaskError):
                job.result(timeout=60)
            # A diverged simulation says nothing about pool health.
            assert breaker.state == "closed"
            assert breaker.failures == 0
        finally:
            scheduler.close()

    def test_crashes_feed_and_trip_the_breaker(self, tmp_path):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=300.0)
        scheduler = JobScheduler(workers=1, breaker=breaker, retries=0)
        try:
            for i in range(2):
                task = task_for(tmp_path, f"burst{i}", plan=("crash",))
                job = scheduler.submit(task, key=key_of(task))
                job.wait(60)
            assert breaker.state == "open"
            from repro.runtime import CircuitOpen

            with pytest.raises(CircuitOpen) as excinfo:
                scheduler.submit(task_for(tmp_path, "refused"))
            assert excinfo.value.retry_after_s >= 1.0
            assert scheduler.stats.rejected_open == 1
        finally:
            scheduler.close()


class TestCallbacksAndSnapshot:
    def test_on_result_runs_before_waiters_wake(self, tmp_path):
        landed = []
        seen_at_wake = []

        def on_result(job, record):
            landed.append(job.key)

        scheduler = JobScheduler(workers=1, on_result=on_result)
        try:
            task = task_for(tmp_path, "cb")
            job = scheduler.submit(task, key=key_of(task))

            def waiter():
                job.wait(60)
                seen_at_wake.append(list(landed))

            thread = threading.Thread(target=waiter)
            thread.start()
            thread.join(60)
            assert seen_at_wake == [[job.key]]
        finally:
            scheduler.close()

    def test_callback_exception_does_not_kill_the_pump(self, tmp_path):
        def explode(job, record):
            raise RuntimeError("bookkeeping bug")

        scheduler = JobScheduler(workers=1, on_result=explode)
        try:
            with pytest.warns(RuntimeWarning, match="bookkeeping bug"):
                first = scheduler.submit(task_for(tmp_path, "x1"))
                assert first.result(timeout=60)["source"] == "simulation"
            # The pump survived and runs the next job.
            with pytest.warns(RuntimeWarning):
                second = scheduler.submit(task_for(tmp_path, "x2"))
                assert second.result(timeout=60)["source"] == "simulation"
        finally:
            scheduler.close()

    def test_snapshot_shape(self, tmp_path):
        scheduler = JobScheduler(workers=2, max_pending=5)
        try:
            scheduler.submit(task_for(tmp_path, "snap")).result(timeout=60)
            snap = scheduler.snapshot()
            assert snap["workers"] == 2
            assert snap["max_pending"] == 5
            assert snap["pending"] == 0
            assert snap["counters"]["accepted"] == 1
            assert snap["counters"]["completed"] == 1
        finally:
            scheduler.close()
