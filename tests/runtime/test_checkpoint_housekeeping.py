"""Checkpoint-manifest housekeeping: compaction and garbage collection.

A long campaign appends one manifest line per completed point per
attempt, so resumed sweeps grow the file without growing its key set;
abandoned campaigns leave content-addressed orphans nothing will ever
map to again.  ``SweepCheckpoint.compact`` rewrites the manifest to
one line per key via an atomic same-directory replace (crash leaves
either the old file or the new one, never a torn mix), and
``gc_manifests`` reaps manifests untouched for ``max_age_days``.
"""

import json
import os
import pathlib
import threading
import time

from repro.runtime import SweepCheckpoint, gc_manifests, run_sweep, spmm_task


def _flush_n(checkpoint, pairs):
    for key, record in pairs:
        checkpoint.flush(key, record)


class TestCompact:
    def test_compacts_to_one_line_per_key(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "sweep-x.manifest.jsonl")
        _flush_n(cp, [("a", {"v": 1}), ("b", {"v": 2}),
                      ("a", {"v": 1}), ("a", {"v": 3})])
        assert len(cp.path.read_text().splitlines()) == 4
        assert cp.compact() == 2
        lines = cp.path.read_text().splitlines()
        assert len(lines) == 2
        # Last write per key wins, exactly as load() resolves it.
        assert cp.load() == {"a": {"v": 3}, "b": {"v": 2}}

    def test_missing_or_empty_manifest_is_a_noop(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "sweep-y.manifest.jsonl")
        assert cp.compact() == 0
        assert not cp.exists()
        cp.path.write_text("")
        assert cp.compact() == 0

    def test_drops_torn_tail(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "sweep-z.manifest.jsonl")
        cp.flush("a", {"v": 1})
        with open(cp.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "b", "rec')  # writer died mid-append
        assert cp.compact() == 1
        assert cp.load() == {"a": {"v": 1}}

    def test_leaves_no_temp_file_behind(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "sweep-t.manifest.jsonl")
        cp.flush("a", {"v": 1})
        cp.compact()
        leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert not leftovers

    def test_crash_during_compaction_preserves_manifest(
        self, tmp_path, monkeypatch
    ):
        """A failed atomic replace must leave the old manifest intact
        (and clean up its temp file) rather than tearing the file."""
        cp = SweepCheckpoint(tmp_path / "sweep-c.manifest.jsonl")
        _flush_n(cp, [("a", {"v": 1}), ("a", {"v": 2})])
        before = cp.path.read_text()

        def exploding_replace(_src, _dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", exploding_replace)
        cp.compact()
        assert cp.path.read_text() == before
        assert cp.load() == {"a": {"v": 2}}
        assert not [p for p in tmp_path.iterdir() if ".tmp." in p.name]

    def test_stale_temp_from_a_dead_compactor_is_ignored(self, tmp_path):
        """A temp file orphaned by a killed process must not corrupt a
        later load or compaction."""
        cp = SweepCheckpoint(tmp_path / "sweep-s.manifest.jsonl")
        cp.flush("a", {"v": 1})
        orphan = cp.path.with_name(cp.path.name + ".tmp.99999")
        orphan.write_text('{"key": "ghost", "record": {"v": 0}}\n')
        assert cp.load() == {"a": {"v": 1}}
        assert cp.compact() == 1
        assert cp.load() == {"a": {"v": 1}}

    def test_run_sweep_compacts_on_completion(self, tmp_path):
        """A completed sweep's manifest holds one line per point, even
        when the run re-flushed resumed records."""
        tasks = [
            spmm_task("products", k, max_vertices=512, seed=0,
                      window_edges=512, n_cores=1)
            for k in (8, 16)
        ]
        checkpoint = SweepCheckpoint.for_tasks(tasks, directory=tmp_path)
        run_sweep(tasks, workers=1, checkpoint=checkpoint)
        # Resume re-flushes the two restored records into the manifest,
        # then the completed sweep compacts them away again.
        report = run_sweep(tasks, workers=1, checkpoint=checkpoint,
                           resume=True)
        assert report.resumed == 2
        lines = checkpoint.path.read_text().splitlines()
        assert len(lines) == 2
        assert {json.loads(line)["key"] for line in lines} == \
            set(checkpoint.load())


class TestGcManifests:
    def test_reaps_only_old_manifests(self, tmp_path):
        old = tmp_path / "sweep-old.manifest.jsonl"
        new = tmp_path / "sweep-new.manifest.jsonl"
        bystander = tmp_path / "notes.jsonl"
        for path in (old, new, bystander):
            path.write_text("{}\n")
        stale = time.time() - 30 * 86400
        os.utime(old, (stale, stale))
        os.utime(bystander, (stale, stale))
        assert gc_manifests(directory=tmp_path, max_age_days=14) == 1
        assert not old.exists()
        assert new.exists()
        assert bystander.exists()

    def test_missing_directory_is_harmless(self, tmp_path):
        assert gc_manifests(directory=tmp_path / "nope") == 0

    def test_zero_age_reaps_everything(self, tmp_path):
        path = tmp_path / "sweep-a.manifest.jsonl"
        path.write_text("{}\n")
        stale = time.time() - 60
        os.utime(path, (stale, stale))
        assert gc_manifests(directory=tmp_path, max_age_days=0) == 1
        assert not path.exists()


class TestGcNeverRacesLiveSweeps:
    """Regression: ``gc_manifests`` must never collect the manifest of
    a sweep that is still running.

    The original hazard had two halves: a sweep that resumes without
    appending anything new (every point already in the manifest) left
    the mtime stale for the whole run, and the GC judged age from a
    single stat taken at scan time — so an append landing between the
    scan and the unlink was ignored.  ``SweepCheckpoint.touch`` at
    sweep start fixes the first; re-statting immediately before the
    unlink fixes the second.
    """

    def _stale(self, path, days=30):
        stale = time.time() - days * 86400
        os.utime(path, (stale, stale))

    def test_touch_refreshes_a_backdated_manifest(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "sweep-t.manifest.jsonl")
        cp.flush("a", {"v": 1})
        self._stale(cp.path)
        assert cp.touch()
        assert gc_manifests(directory=tmp_path, max_age_days=14) == 0
        assert cp.path.exists()

    def test_touch_missing_manifest_is_harmless(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "sweep-none.manifest.jsonl")
        assert not cp.touch()

    def test_resumed_sweep_marks_its_manifest_live(self, tmp_path):
        """A fully-resumed sweep (zero new appends) keeps its manifest
        out of GC range even when the file predates the cutoff."""
        tasks = [
            spmm_task("products", k, max_vertices=512, seed=0,
                      window_edges=512, n_cores=1)
            for k in (8, 16)
        ]
        checkpoint = SweepCheckpoint.for_tasks(tasks, directory=tmp_path)
        run_sweep(tasks, workers=1, checkpoint=checkpoint)
        self._stale(checkpoint.path)
        report = run_sweep(tasks, workers=1, checkpoint=checkpoint,
                           resume=True)
        assert report.resumed == 2
        assert gc_manifests(directory=tmp_path, max_age_days=14) == 0
        assert checkpoint.path.exists()

    def test_append_between_scan_and_delete_is_honored(
        self, tmp_path, monkeypatch
    ):
        """An append landing after the directory scan but before this
        file's unlink turn must save the manifest (age is re-checked
        immediately before the delete, not once at scan time)."""
        manifest = tmp_path / "sweep-live.manifest.jsonl"
        manifest.write_text("{}\n")
        self._stale(manifest)
        real_glob = pathlib.Path.glob

        def glob_then_append(self, pattern):
            paths = list(real_glob(self, pattern))
            os.utime(manifest, None)  # the live sweep appends now
            return iter(paths)

        monkeypatch.setattr(pathlib.Path, "glob", glob_then_append)
        assert gc_manifests(directory=tmp_path, max_age_days=14) == 0
        assert manifest.exists()

    def test_concurrent_writer_survives_gc_storm(self, tmp_path):
        """A manifest with an active writer survives repeated GC
        passes running concurrently with its appends."""
        cp = SweepCheckpoint(tmp_path / "sweep-busy.manifest.jsonl")
        cp.flush("seed", {"v": 0})
        self._stale(cp.path)  # looks abandoned until the writer wakes
        stop = threading.Event()
        flushed_once = threading.Event()

        def writer():
            n = 0
            while not stop.is_set():
                cp.flush(f"k{n}", {"v": n})
                flushed_once.set()
                n += 1

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            assert flushed_once.wait(5.0)
            deadline = time.time() + 0.5
            while time.time() < deadline:
                assert gc_manifests(directory=tmp_path,
                                    max_age_days=14) == 0
        finally:
            stop.set()
            thread.join(5.0)
        assert cp.path.exists()
        assert cp.load()
