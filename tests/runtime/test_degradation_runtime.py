"""Degradation through the sweep runtime: provenance, cache, determinism.

The runtime-facing promises of the degraded-fabric model: a spec rides
the task's override tuple into the content-addressed cache key (healthy
and degraded records can never collide), every degraded record carries
a ``"degradation"`` provenance field next to ``"source"``, and the same
seed + spec produces bit-identical records however the sweep executes —
sequentially, across a process pool, across a pool-respawn retry, and
across a checkpoint ``--resume``.
"""

import json
from dataclasses import asdict

import pytest

from repro.piuma.degradation import DEGRADATION_PRESETS, DegradationSpec
from repro.runtime import (
    HardwareExhausted,
    ResultCache,
    SweepCheckpoint,
    cache_key,
    run_sweep,
    spmm_task,
)

WINDOW = dict(max_vertices=512, seed=0, window_edges=512)
SPEC = DegradationSpec.at_severity(0.5)

#: Wall-clock-dependent record fields excluded from byte-identity.
HOST_TIMING_FIELDS = ("host_wall_s", "events_per_s")


def degraded_task(embedding_dim=8, n_cores=2, spec=SPEC):
    return spmm_task(
        "products", embedding_dim, **WINDOW, n_cores=n_cores,
    ).with_degradation(spec)


def canon(records):
    stripped = [
        {k: v for k, v in record.items() if k not in HOST_TIMING_FIELDS}
        for record in records
    ]
    return json.dumps(stripped, sort_keys=True)


class TestTaskAndCacheIdentity:
    def test_with_degradation_merges_override(self):
        task = degraded_task()
        assert task.config().degradation == SPEC
        assert dict(task.overrides)["degradation"] == SPEC

    def test_with_degradation_none_restores_healthy(self):
        task = degraded_task().with_degradation(None)
        assert task.config().degradation is None

    def test_healthy_and_degraded_keys_never_collide(self):
        healthy = spmm_task("products", 8, **WINDOW, n_cores=2)
        keys = {cache_key(healthy.key_payload())}
        keys.add(cache_key(degraded_task().key_payload()))
        for preset in DEGRADATION_PRESETS.values():
            keys.add(cache_key(
                healthy.with_degradation(preset).key_payload()
            ))
        # SPEC is the "moderate" preset, so those two keys *should*
        # alias (equal specs are the same point); everything else is
        # distinct.
        assert len(keys) == 1 + len(DEGRADATION_PRESETS)

    def test_spec_seed_is_part_of_the_key(self):
        a = degraded_task(spec=SPEC)
        b = degraded_task(spec=SPEC.with_(seed=1))
        assert cache_key(a.key_payload()) != cache_key(b.key_payload())

    def test_cached_degraded_record_round_trips(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        task = degraded_task()
        cold = run_sweep([task], workers=1, cache=cache)
        warm = run_sweep([task], workers=1, cache=cache)
        assert warm.cache_hits == 1
        assert canon(cold.records) == canon(warm.records)
        assert warm.records[0]["degradation"] == asdict(SPEC)


class TestProvenance:
    def test_degraded_record_carries_spec(self):
        record = run_sweep([degraded_task()], workers=1).records[0]
        assert record["source"] == "simulation"
        assert record["degradation"] == asdict(SPEC)

    def test_healthy_record_has_no_degradation_field(self):
        record = run_sweep(
            [spmm_task("products", 8, **WINDOW, n_cores=2)], workers=1
        ).records[0]
        assert "degradation" not in record

    def test_fallback_record_carries_spec_too(self):
        record = degraded_task().fallback_record()
        assert record["source"] == "model_fallback"
        assert record["degradation"] == asdict(SPEC)

    def test_run_sweep_degradation_kwarg_rewrites_tasks(self):
        tasks = [spmm_task("products", 8, **WINDOW, n_cores=2)]
        report = run_sweep(tasks, workers=1, degradation=SPEC)
        assert report.records[0]["degradation"] == asdict(SPEC)
        assert report.tasks[0].config().degradation == SPEC

    def test_exhausted_fabric_is_a_structured_failure(self):
        dead = degraded_task(spec=DegradationSpec(dead_dma_fraction=1.0))
        with pytest.raises(HardwareExhausted):
            run_sweep([dead], workers=1)
        # Never retried, surfaced as a payload under the skip policy.
        report = run_sweep([dead], workers=1, on_error="skip", retries=2)
        failure = report.records[0]
        assert failure["source"] == "failed"
        assert failure["error"]["kind"] == "exhausted"
        assert failure["error"]["attempts"] == 1


class TestDeterminism:
    def test_pool_equals_sequential(self):
        tasks = [degraded_task(k, cores)
                 for cores in (1, 2) for k in (8, 16)]
        sequential = run_sweep(tasks, workers=1)
        pooled = run_sweep(tasks, workers=4)
        assert canon(sequential.records) == canon(pooled.records)

    def test_identical_across_pool_respawn_retry(self, tmp_path):
        """A record computed on attempt 2 (after a worker death forced a
        pool respawn) must be bit-identical to a clean first-attempt
        run of the same degraded task."""
        from repro.runtime.faults import FaultyTask

        clean = run_sweep([degraded_task()], workers=1).records[0]
        crasher = FaultyTask(
            name="respawn", scratch=str(tmp_path), plan=("crash", "ok")
        )
        report = run_sweep(
            [crasher, degraded_task()], workers=2, retries=1
        )
        assert crasher.attempts_made() >= 2
        retried = report.records[1]
        assert canon([clean]) == canon([retried])

    def test_identical_across_resume(self, tmp_path):
        tasks = [degraded_task(k) for k in (8, 16)]
        cache = ResultCache(directory=tmp_path, enabled=False)
        checkpoint = SweepCheckpoint.for_tasks(tasks, directory=tmp_path)
        full = run_sweep(tasks, workers=1, cache=cache,
                         checkpoint=checkpoint)
        # Simulate an interrupted campaign: the manifest survives with
        # only the first point, the rerun resumes the rest.
        records = checkpoint.load()
        first_key = cache_key(tasks[0].key_payload())
        checkpoint.discard()
        checkpoint.flush(first_key, records[first_key])
        resumed = run_sweep(tasks, workers=1, cache=cache,
                            checkpoint=checkpoint, resume=True)
        assert resumed.resumed == 1
        assert canon(full.records) == canon(resumed.records)
