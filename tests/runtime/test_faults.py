"""Fault-injection suite: every resilience path of ``run_sweep``.

Uses :class:`repro.runtime.faults.FaultyTask` — workers that crash,
hang, raise, or diverge on a deterministic per-attempt schedule — to
prove the acceptance properties: injected crash/hang/exception each
leave the sweep completing with submission-ordered records, fallback
points carry Eq.5 provenance, and divergence is never retried.
"""

import pytest

from repro.runtime import (
    FaultyTask,
    ResultCache,
    TaskTimeout,
    WorkerCrash,
    run_sweep,
    spmm_task,
)

#: No backoff: retries are immediate, keeping the suite fast while the
#: schedule stays exact (attempt counters live on disk).
FAST = dict(backoff_s=0.0, jitter=0.0)


@pytest.fixture()
def make_task(tmp_path):
    scratch = str(tmp_path / "scratch")

    def _make(name, plan=("ok",), **kwargs):
        return FaultyTask(name=name, scratch=scratch, plan=tuple(plan),
                          **kwargs)

    return _make


class TestCrashRespawn:
    def test_crash_respawns_pool_and_completes_in_order(self, make_task):
        tasks = [make_task("a", ("crash", "ok")),
                 make_task("b"),
                 make_task("c")]
        report = run_sweep(tasks, workers=2, retries=2, **FAST)
        assert [r["name"] for r in report.records] == ["a", "b", "c"]
        assert all(r["source"] == "simulation" for r in report.records)
        assert not report.failures

    def test_crash_exhausted_raises_worker_crash(self, make_task):
        tasks = [make_task("a", ("crash",)), make_task("b")]
        with pytest.raises(WorkerCrash):
            run_sweep(tasks, workers=2, retries=1, **FAST)


class TestTimeouts:
    def test_hang_times_out_then_retry_succeeds(self, make_task):
        tasks = [make_task("h", ("hang", "ok"), hang_s=30.0),
                 make_task("b")]
        report = run_sweep(tasks, workers=2, timeout=1.5, retries=1, **FAST)
        assert report.records[0]["name"] == "h"
        assert report.records[0]["attempt"] == 2
        assert report.records[1]["source"] == "simulation"

    def test_hang_exhausted_raises_timeout(self, make_task):
        tasks = [make_task("h", ("hang",), hang_s=30.0), make_task("b")]
        with pytest.raises(TaskTimeout):
            run_sweep(tasks, workers=2, timeout=1.0, retries=0, **FAST)


class TestExceptionRetry:
    def test_raise_then_retry_then_success_parallel(self, make_task):
        tasks = [make_task("r", ("raise", "raise", "ok")), make_task("b")]
        report = run_sweep(tasks, workers=2, retries=2, **FAST)
        assert report.records[0]["attempt"] == 3
        assert not report.failures

    def test_raise_then_retry_then_success_inline(self, make_task):
        report = run_sweep([make_task("r", ("raise", "ok"))],
                           workers=1, retries=1, **FAST)
        assert report.records[0]["attempt"] == 2

    def test_default_policy_raises_with_context(self, make_task):
        task = make_task("r", ("raise",))
        with pytest.raises(Exception) as err:
            run_sweep([task, make_task("b")], workers=2, retries=0, **FAST)
        assert err.value.label == "fault:r"
        assert err.value.attempts == 1


class TestPolicies:
    def test_skip_keeps_order_and_records_structured_failure(self, make_task):
        tasks = [make_task("a"), make_task("bad", ("raise",)),
                 make_task("c")]
        report = run_sweep(tasks, workers=2, retries=0, on_error="skip",
                           **FAST)
        assert report.records[0]["name"] == "a"
        failed = report.records[1]
        assert failed["source"] == "failed"
        assert failed["error"]["kind"] == "error"
        assert failed["error"]["label"] == "fault:bad"
        assert failed["error"]["attempts"] == 1
        assert report.records[2]["name"] == "c"
        assert len(report.failures) == 1
        assert "degraded" in report.summary()

    def test_fallback_uses_task_fallback_record(self, make_task):
        tasks = [make_task("bad", ("raise",)), make_task("b")]
        report = run_sweep(tasks, workers=2, retries=0,
                           on_error="fallback", **FAST)
        assert report.records[0]["source"] == "model_fallback"
        assert report.records[0]["error"]["kind"] == "error"
        assert report.records[1]["source"] == "simulation"

    def test_divergence_is_never_retried(self, make_task):
        task = make_task("d", ("diverge", "ok"))
        report = run_sweep([task], workers=1, retries=5, on_error="skip",
                           **FAST)
        assert report.records[0]["source"] == "failed"
        assert report.records[0]["error"]["kind"] == "diverged"
        assert task.attempts_made() == 1

    def test_invalid_policy_rejected(self, make_task):
        with pytest.raises(ValueError):
            run_sweep([make_task("a")], workers=1, on_error="ignore")


class TestSpMMFallbackProvenance:
    """Acceptance: a diverging DES point degrades to valid Eq.5 numbers."""

    DIVERGING = dict(max_vertices=512, seed=0, window_edges=512,
                     n_cores=1, max_events=16)

    def test_fallback_record_carries_eq5_numbers(self):
        task = spmm_task("products", 8, **self.DIVERGING)
        report = run_sweep([task], workers=1, on_error="fallback")
        record = report.records[0]
        assert record["source"] == "model_fallback"
        assert record["error"]["kind"] == "diverged"
        assert record["gflops"] > 0
        assert record["model_time_ns"] > 0
        assert record["gflops"] == record["model_gflops"]
        assert record["efficiency"] == 1.0
        # The DES never produced numbers for this point.
        assert record["sim_time_ns"] == 0.0

    def test_fallback_records_are_not_cached(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        task = spmm_task("products", 8, **self.DIVERGING)
        run_sweep([task], workers=1, cache=cache, on_error="fallback")
        rerun = run_sweep([task], workers=1, cache=cache,
                          on_error="fallback")
        assert rerun.cache_hits == 0
        assert rerun.records[0]["source"] == "model_fallback"


class TestFaultHarness:
    def test_plan_validation(self, tmp_path):
        with pytest.raises(ValueError):
            FaultyTask(name="x", scratch=str(tmp_path), plan=("explode",))

    def test_attempt_counter_spans_processes(self, make_task):
        task = make_task("counted", ("raise", "raise", "ok"))
        run_sweep([task, make_task("b")], workers=2, retries=2, **FAST)
        assert task.attempts_made() == 3


class TestServiceFaultInjector:
    def test_unknown_point_rejected(self):
        from repro.runtime import ServiceFaultInjector

        injector = ServiceFaultInjector()
        with pytest.raises(ValueError, match="unknown fault point"):
            injector.arm("cosmic_rays", 1)
        with pytest.raises(ValueError):
            injector.arm("queue_full", -1)

    def test_count_armed_points_consume_exactly(self):
        from repro.runtime import ServiceFaultInjector

        injector = ServiceFaultInjector()
        injector.arm("queue_full", 2)
        assert injector.queue_full()
        assert injector.queue_full()
        assert not injector.queue_full()
        assert injector.fired("queue_full") == 2

    def test_disarm_with_zero(self):
        from repro.runtime import ServiceFaultInjector

        injector = ServiceFaultInjector()
        injector.arm("queue_full", 5)
        injector.arm("queue_full", 0)
        assert not injector.queue_full()
        assert injector.fired("queue_full") == 0

    def test_sabotage_wraps_identity_transparently(self, make_task):
        from repro.runtime import CrashTask, ServiceFaultInjector

        injector = ServiceFaultInjector()
        victim = make_task("victim")
        assert injector.sabotage(victim) is victim
        injector.arm("worker_crash_burst", 1)
        wrapped = injector.sabotage(victim)
        assert isinstance(wrapped, CrashTask)
        assert wrapped.key_payload() == victim.key_payload()
        assert wrapped.fallback_record() == victim.fallback_record()
        assert "crash-burst" in wrapped.label()
        # Burst exhausted: back to passing tasks through untouched.
        assert injector.sabotage(victim) is victim

    def test_cache_delay_disarmed_is_free(self):
        import time

        from repro.runtime import ServiceFaultInjector

        injector = ServiceFaultInjector()
        started = time.perf_counter()
        assert injector.cache_delay() == 0
        assert time.perf_counter() - started < 0.05
        injector.arm("slow_cache_io", 0.05)
        assert injector.cache_delay() == pytest.approx(0.05)
        assert injector.fired("slow_cache_io") == 1
