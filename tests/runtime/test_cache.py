"""Result-cache correctness: keying, invalidation, robustness."""

import json
import os

import pytest

import repro.runtime.cache as cache_module
from repro.runtime import ResultCache, cache_key, spmm_task
from repro.runtime.cache import default_cache_dir


@pytest.fixture
def cache(tmp_path):
    return ResultCache(directory=tmp_path / "cache")


TASK_KWARGS = dict(max_vertices=512, seed=3, window_edges=256, n_cores=2)


class TestCacheKey:
    def test_stable_across_dict_order(self):
        a = cache_key({"x": 1, "y": 2})
        b = cache_key({"y": 2, "x": 1})
        assert a == b

    def test_differs_by_payload(self):
        assert cache_key({"x": 1}) != cache_key({"x": 2})

    def test_differs_by_salt(self):
        payload = {"x": 1}
        assert cache_key(payload, salt="v1") != cache_key(payload, salt="v2")

    def test_task_payload_covers_all_config_fields(self):
        """The key payload embeds every PIUMAConfig dataclass field,
        so changing any one of them invalidates the entry."""
        base = spmm_task("products", 8, **TASK_KWARGS)
        payload = base.key_payload()
        from dataclasses import fields

        from repro.piuma.config import PIUMAConfig

        assert set(payload["config"]) == {
            f.name for f in fields(PIUMAConfig)
        }

    def test_any_config_field_change_invalidates(self):
        base = spmm_task("products", 8, **TASK_KWARGS)
        for change in (
            {"n_cores": 4},
            {"dram_latency_ns": 90.0},
            {"dram_bandwidth_scale": 2.0},
            {"threads_per_mtp": 8},
            {"feature_bytes": 8},
        ):
            kwargs = dict(TASK_KWARGS)
            kwargs.update(change)
            other = spmm_task("products", 8, **kwargs)
            assert (cache_key(base.key_payload())
                    != cache_key(other.key_payload())), change

    def test_sweep_point_and_dataset_change_invalidates(self):
        base = spmm_task("products", 8, **TASK_KWARGS)
        for other in (
            spmm_task("products", 16, **TASK_KWARGS),
            spmm_task("power-12", 8, **TASK_KWARGS),
            spmm_task("products", 8, kernel="loop", **TASK_KWARGS),
            spmm_task("products", 8, **{**TASK_KWARGS, "seed": 4}),
            spmm_task("products", 8, **{**TASK_KWARGS, "max_vertices": 1024}),
            spmm_task("products", 8, **{**TASK_KWARGS, "window_edges": 512}),
        ):
            assert (cache_key(base.key_payload())
                    != cache_key(other.key_payload()))


class TestResultCache:
    def test_roundtrip(self, cache):
        cache.put("k1", {"gflops": 1.5}, payload={"p": 1})
        assert cache.get("k1") == {"gflops": 1.5}
        assert cache.stats.hits == 1 and cache.stats.writes == 1

    def test_miss_counts(self, cache):
        assert cache.get("absent") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_disabled_cache_never_hits_or_writes(self, tmp_path):
        cache = ResultCache(directory=tmp_path, enabled=False)
        cache.put("k", {"v": 1})
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, cache):
        cache.put("k", {"v": 1})
        path = cache.directory / "k.json"
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get("k") is None

    def test_entry_missing_record_field_is_a_miss(self, cache):
        cache.put("k", {"v": 1})
        path = cache.directory / "k.json"
        path.write_text(json.dumps({"salt": "x"}))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get("k") is None

    def test_clear_removes_everything(self, cache):
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_salt_scopes_keys(self, tmp_path):
        """Bumping the code-version salt makes old entries invisible."""
        old = ResultCache(directory=tmp_path, salt="v1")
        new = ResultCache(directory=tmp_path, salt="v2")
        payload = {"config": {"n_cores": 2}}
        old.put(old.key_for(payload), {"gflops": 9.9})
        assert new.get(new.key_for(payload)) is None

    def test_entry_file_is_self_describing(self, cache):
        cache.put("k", {"gflops": 2.0}, payload={"kernel": "dma"})
        entry = json.loads((cache.directory / "k.json").read_text())
        assert entry["payload"] == {"kernel": "dma"}
        assert entry["record"] == {"gflops": 2.0}
        assert entry["salt"] == cache.salt


class TestTempFileHygiene:
    """Crashed writers must not litter the cache directory forever."""

    def _strand(self, cache, key, pid):
        """Plant what a writer killed between write and rename leaves."""
        cache.directory.mkdir(parents=True, exist_ok=True)
        stale = cache.directory / f"{key}.tmp.{pid}"
        stale.write_text('{"half": "written')
        return stale

    def test_put_sweeps_stale_temps_for_its_key(self, cache):
        stale = self._strand(cache, "k", 99999)
        cache.put("k", {"v": 1})
        assert not stale.exists()
        assert cache.get("k") == {"v": 1}

    def test_put_leaves_other_keys_temps_alone(self, cache):
        other = self._strand(cache, "other", 99999)
        cache.put("k", {"v": 1})
        assert other.exists()  # clear()'s job, not this key's put

    def test_clear_sweeps_all_stranded_temps(self, cache):
        cache.put("a", {"v": 1})
        self._strand(cache, "b", 11111)
        self._strand(cache, "c", 22222)
        assert cache.clear() == 1  # temps are swept but not counted
        assert list(cache.directory.glob("*.tmp.*")) == []

    def test_failed_write_removes_own_temp(self, cache):
        cache.directory.mkdir(parents=True, exist_ok=True)
        with pytest.raises(TypeError):
            cache.put("k", {"v": object()})  # not JSON-serializable
        assert list(cache.directory.glob("k.tmp.*")) == []
        assert cache.get("k") is None

    def test_stranded_temp_never_serves_reads(self, cache):
        self._strand(cache, "k", os.getpid())
        assert cache.get("k") is None
        assert len(cache) == 0


class TestDefaultCacheDir:
    @pytest.fixture(autouse=True)
    def _isolate(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setattr(cache_module, "_FALLBACK_DIR", None)

    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    def test_source_tree_probe(self):
        path = default_cache_dir()
        assert path.parts[-3:] == ("benchmarks", "out", ".cache")
        assert (path.parents[1] / ".." / "src").resolve().is_dir()

    def test_fallback_warns_once_and_memoizes(self, monkeypatch, tmp_path):
        """Without a source tree the first call resolves the cwd
        fallback with a warning naming it; later calls reuse the same
        directory silently even after a chdir."""
        fake_pkg = tmp_path / "site" / "repro" / "runtime" / "cache.py"
        monkeypatch.setattr(cache_module, "__file__", str(fake_pkg))
        first_cwd = tmp_path / "here"
        first_cwd.mkdir()
        monkeypatch.chdir(first_cwd)
        with pytest.warns(UserWarning, match="REPRO_CACHE_DIR"):
            chosen = default_cache_dir()
        assert chosen == first_cwd / "benchmarks" / "out" / ".cache"
        other_cwd = tmp_path / "there"
        other_cwd.mkdir()
        monkeypatch.chdir(other_cwd)
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning = a bug
            assert default_cache_dir() == chosen  # memoized, no re-resolve

    def test_env_beats_memoized_fallback(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            cache_module, "_FALLBACK_DIR", tmp_path / "stale"
        )
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "fresh"))
        assert default_cache_dir() == tmp_path / "fresh"
