"""Result-cache correctness: keying, invalidation, robustness."""

import json

import pytest

from repro.runtime import ResultCache, cache_key, spmm_task


@pytest.fixture
def cache(tmp_path):
    return ResultCache(directory=tmp_path / "cache")


TASK_KWARGS = dict(max_vertices=512, seed=3, window_edges=256, n_cores=2)


class TestCacheKey:
    def test_stable_across_dict_order(self):
        a = cache_key({"x": 1, "y": 2})
        b = cache_key({"y": 2, "x": 1})
        assert a == b

    def test_differs_by_payload(self):
        assert cache_key({"x": 1}) != cache_key({"x": 2})

    def test_differs_by_salt(self):
        payload = {"x": 1}
        assert cache_key(payload, salt="v1") != cache_key(payload, salt="v2")

    def test_task_payload_covers_all_config_fields(self):
        """The key payload embeds every PIUMAConfig dataclass field,
        so changing any one of them invalidates the entry."""
        base = spmm_task("products", 8, **TASK_KWARGS)
        payload = base.key_payload()
        from dataclasses import fields

        from repro.piuma.config import PIUMAConfig

        assert set(payload["config"]) == {
            f.name for f in fields(PIUMAConfig)
        }

    def test_any_config_field_change_invalidates(self):
        base = spmm_task("products", 8, **TASK_KWARGS)
        for change in (
            {"n_cores": 4},
            {"dram_latency_ns": 90.0},
            {"dram_bandwidth_scale": 2.0},
            {"threads_per_mtp": 8},
            {"feature_bytes": 8},
        ):
            kwargs = dict(TASK_KWARGS)
            kwargs.update(change)
            other = spmm_task("products", 8, **kwargs)
            assert (cache_key(base.key_payload())
                    != cache_key(other.key_payload())), change

    def test_sweep_point_and_dataset_change_invalidates(self):
        base = spmm_task("products", 8, **TASK_KWARGS)
        for other in (
            spmm_task("products", 16, **TASK_KWARGS),
            spmm_task("power-12", 8, **TASK_KWARGS),
            spmm_task("products", 8, kernel="loop", **TASK_KWARGS),
            spmm_task("products", 8, **{**TASK_KWARGS, "seed": 4}),
            spmm_task("products", 8, **{**TASK_KWARGS, "max_vertices": 1024}),
            spmm_task("products", 8, **{**TASK_KWARGS, "window_edges": 512}),
        ):
            assert (cache_key(base.key_payload())
                    != cache_key(other.key_payload()))


class TestResultCache:
    def test_roundtrip(self, cache):
        cache.put("k1", {"gflops": 1.5}, payload={"p": 1})
        assert cache.get("k1") == {"gflops": 1.5}
        assert cache.stats.hits == 1 and cache.stats.writes == 1

    def test_miss_counts(self, cache):
        assert cache.get("absent") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_disabled_cache_never_hits_or_writes(self, tmp_path):
        cache = ResultCache(directory=tmp_path, enabled=False)
        cache.put("k", {"v": 1})
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, cache):
        cache.put("k", {"v": 1})
        path = cache.directory / "k.json"
        path.write_text("{not json")
        assert cache.get("k") is None

    def test_entry_missing_record_field_is_a_miss(self, cache):
        cache.put("k", {"v": 1})
        path = cache.directory / "k.json"
        path.write_text(json.dumps({"salt": "x"}))
        assert cache.get("k") is None

    def test_clear_removes_everything(self, cache):
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_salt_scopes_keys(self, tmp_path):
        """Bumping the code-version salt makes old entries invisible."""
        old = ResultCache(directory=tmp_path, salt="v1")
        new = ResultCache(directory=tmp_path, salt="v2")
        payload = {"config": {"n_cores": 2}}
        old.put(old.key_for(payload), {"gflops": 9.9})
        assert new.get(new.key_for(payload)) is None

    def test_entry_file_is_self_describing(self, cache):
        cache.put("k", {"gflops": 2.0}, payload={"kernel": "dma"})
        entry = json.loads((cache.directory / "k.json").read_text())
        assert entry["payload"] == {"kernel": "dma"}
        assert entry["record"] == {"gflops": 2.0}
        assert entry["salt"] == cache.salt
