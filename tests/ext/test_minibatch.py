import numpy as np
import pytest

from repro.core.gcn import GCNConfig, GCNModel
from repro.ext.minibatch import (
    full_neighborhood,
    induced_block,
    sample_batch,
    sampled_inference,
)
from repro.graphs.rmat import RMATParams, rmat_graph


@pytest.fixture(scope="module")
def model():
    adj = rmat_graph(RMATParams(scale=8, edge_factor=6), seed=4,
                     symmetric=True)
    return GCNModel(
        adj, GCNConfig(in_dim=6, hidden_dim=12, out_dim=3, n_layers=2),
        seed=2,
    )


class TestSampling:
    def test_neighborhood_includes_self(self, model):
        hood = full_neighborhood(model.adj, [5])
        assert 5 in hood

    def test_neighborhood_includes_neighbors(self, model):
        neighbors, _ = model.adj.row(5)
        hood = full_neighborhood(model.adj, [5])
        assert set(neighbors).issubset(set(hood))

    def test_batch_layers_grow_outward(self, model):
        batch = sample_batch(model.adj, [0, 1, 2], n_layers=2)
        sizes = [len(l) for l in batch.layers]
        assert sizes[0] >= sizes[1] >= sizes[2] == 3

    def test_layers_nested(self, model):
        batch = sample_batch(model.adj, [0, 1], n_layers=2)
        for inner, outer in zip(batch.layers[1:], batch.layers[:-1]):
            assert set(inner).issubset(set(outer))

    def test_validation(self, model):
        with pytest.raises(ValueError):
            sample_batch(model.adj, [0], n_layers=0)
        with pytest.raises(ValueError):
            sample_batch(model.adj, [], n_layers=1)
        with pytest.raises(ValueError):
            sample_batch(model.adj, [10**9], n_layers=1)


class TestInducedBlock:
    def test_block_matches_dense_slice(self, model):
        out_v = np.array([0, 3, 7])
        in_v = full_neighborhood(model.adj, out_v)
        block = induced_block(model.adj, out_v, in_v)
        dense = model.adj.to_dense()
        np.testing.assert_allclose(
            block.to_dense(), dense[np.ix_(out_v, in_v)], atol=1e-12
        )

    def test_block_shape(self, model):
        block = induced_block(model.adj, [0, 1], [0, 1, 2, 3])
        assert block.shape == (2, 4)


class TestSampledInference:
    def test_matches_full_graph_forward(self, model):
        """The headline property: full-neighborhood sampling computes
        exactly what full-graph inference computes for the targets."""
        features = model.random_features(seed=9)
        targets = np.array([3, 17, 42, 100])
        sampled, _batch = sampled_inference(model, features, targets)
        full = model.forward(features)
        np.testing.assert_allclose(sampled, full[targets], atol=1e-9)

    def test_touches_only_receptive_field(self, model):
        features = model.random_features(seed=9)
        _out, batch = sampled_inference(model, features, [0])
        assert batch.frontier_size < model.adj.n_rows

    def test_single_target(self, model):
        features = model.random_features(seed=1)
        out, _ = sampled_inference(model, features, [25])
        np.testing.assert_allclose(
            out[0], model.forward(features)[25], atol=1e-9
        )


class TestOffloadOverlap:
    def test_overlap_reduces_offload_share(self):
        from repro.gpu.config import A100Config
        from repro.gpu.gcn import gcn_breakdown
        from repro.workloads.gcn_workload import workload_for

        w = workload_for("products", 8)
        plain = gcn_breakdown(w, A100Config())
        overlapped = gcn_breakdown(w, A100Config(overlap_offload=True))
        assert overlapped.offload < plain.offload
        assert overlapped.total < plain.total
        # Kernels are unchanged.
        assert overlapped.spmm == plain.spmm
