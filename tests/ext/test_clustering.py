import numpy as np
import pytest

from repro.cpu.config import XeonConfig
from repro.ext.clustering import (
    cluster_minibatches,
    clustering_time_cpu,
    clustering_time_piuma,
    label_propagation,
)
from repro.piuma.config import PIUMAConfig
from repro.sparse.csr import CSRMatrix


def two_cliques():
    """Two 4-cliques joined by a single edge."""
    import itertools

    edges = []
    for block in (range(4), range(4, 8)):
        for u, v in itertools.permutations(block, 2):
            edges.append((u, v))
    edges += [(3, 4), (4, 3)]
    src, dst = zip(*edges)
    return CSRMatrix.from_edges(list(src), list(dst), shape=(8, 8))


class TestLabelPropagation:
    def test_cliques_found(self):
        labels = label_propagation(two_cliques(), n_iters=20)
        assert len(set(labels[:4])) == 1
        assert len(set(labels[4:])) == 1
        # The bridge should not merge the cliques.
        assert labels[0] != labels[7]

    def test_labels_relabeled_compactly(self):
        labels = label_propagation(two_cliques(), n_iters=20)
        assert set(labels) == set(range(len(set(labels))))

    def test_isolated_vertices_keep_own_cluster(self):
        adj = CSRMatrix([0, 0, 0], [], [], (2, 2))
        labels = label_propagation(adj, n_iters=5)
        assert labels[0] != labels[1]

    def test_deterministic(self, small_rmat):
        a = label_propagation(small_rmat, n_iters=5)
        b = label_propagation(small_rmat, n_iters=5)
        np.testing.assert_array_equal(a, b)

    def test_validation(self, small_rmat):
        with pytest.raises(ValueError):
            label_propagation(small_rmat, n_iters=-1)


class TestMinibatches:
    def test_covers_every_vertex_once(self, small_rmat):
        labels = label_propagation(small_rmat, n_iters=3)
        batches = cluster_minibatches(labels, max_batch_vertices=64)
        combined = np.sort(np.concatenate(batches))
        np.testing.assert_array_equal(
            combined, np.arange(small_rmat.n_rows)
        )

    def test_batches_respect_bound_when_clusters_small(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        batches = cluster_minibatches(labels, max_batch_vertices=4)
        assert all(len(b) <= 4 for b in batches)

    def test_oversized_cluster_gets_own_batch(self):
        labels = np.zeros(10, dtype=np.int64)
        batches = cluster_minibatches(labels, max_batch_vertices=4)
        assert len(batches) == 1 and len(batches[0]) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            cluster_minibatches(np.zeros(3, dtype=np.int64), 0)


class TestClusteringCost:
    def test_piuma_node_faster_than_cpu(self):
        """The Section VI argument: PIUMA accelerates clustering too."""
        cpu = clustering_time_cpu(2_449_029, 64_000_000, XeonConfig())
        piuma = clustering_time_piuma(
            2_449_029, 64_000_000, PIUMAConfig.node()
        )
        assert piuma.total_ns < cpu.total_ns

    def test_sweep_count_scales_total(self):
        one = clustering_time_cpu(10_000, 100_000, XeonConfig(), sweeps=1)
        ten = clustering_time_cpu(10_000, 100_000, XeonConfig(), sweeps=10)
        assert ten.total_ns == pytest.approx(10 * one.total_ns)
