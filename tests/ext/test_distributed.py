import pytest

from repro.cpu.config import XeonConfig
from repro.ext.distributed import (
    ClusterConfig,
    distributed_spmm_time,
    measure_cut_fraction,
    piuma_multinode_spmm_time,
)
from repro.piuma.config import PIUMAConfig


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=2, interconnect_gbps=0)


class TestCutFraction:
    def test_single_node_no_cut(self, small_rmat):
        assert measure_cut_fraction(small_rmat, 1) == 0.0

    def test_cut_grows_with_nodes(self, small_rmat):
        cuts = [measure_cut_fraction(small_rmat, n) for n in (2, 4, 8)]
        assert 0 < cuts[0] <= cuts[1] <= cuts[2] <= 1


class TestDistributedSpMM:
    def test_communication_dominates_at_scale(self):
        """The COST-style point (Section V-A): MPI halo exchange eats
        the gains of adding CPU nodes for cut-heavy graphs."""
        est = distributed_spmm_time(
            2_449_029, 64_000_000, 256, XeonConfig(),
            ClusterConfig(n_nodes=16), cut_fraction=0.8,
        )
        assert est.communication_share > 0.5

    def test_single_node_has_no_comm(self):
        est = distributed_spmm_time(
            100_000, 1_000_000, 64, XeonConfig(),
            ClusterConfig(n_nodes=1), cut_fraction=0.5,
        )
        assert est.communication_ns == 0.0

    def test_piuma_scales_without_comm(self):
        node = PIUMAConfig.node()
        one = piuma_multinode_spmm_time(2_449_029, 64_000_000, 256, node, 1)
        four = piuma_multinode_spmm_time(2_449_029, 64_000_000, 256, node, 4)
        assert four == pytest.approx(one / 4)

    def test_piuma_cluster_beats_cpu_cluster(self):
        """Same node count: DGAS vs MPI on a cut-heavy graph."""
        cpu = distributed_spmm_time(
            2_449_029, 64_000_000, 256, XeonConfig(),
            ClusterConfig(n_nodes=4), cut_fraction=0.7,
        )
        piuma = piuma_multinode_spmm_time(
            2_449_029, 64_000_000, 256, PIUMAConfig.node(), 4
        )
        assert piuma < cpu.time_ns

    def test_validation(self):
        with pytest.raises(ValueError):
            distributed_spmm_time(
                100, 1000, 8, XeonConfig(),
                ClusterConfig(n_nodes=2), cut_fraction=1.5,
            )
