import math

import pytest

from repro.cpu.config import XeonConfig
from repro.ext.distributed import (
    MULTINODE_ENVELOPES,
    ClusterConfig,
    ClusterConfigError,
    distributed_spmm_time,
    measure_cut_fraction,
    multinode_envelope_failure,
    piuma_multinode_spmm_time,
)
from repro.piuma.config import PIUMAConfig


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=2, interconnect_gbps=0)

    @pytest.mark.parametrize("kwargs,field", [
        ({"n_nodes": 0}, "n_nodes"),
        ({"n_nodes": -3}, "n_nodes"),
        ({"n_nodes": 2.0}, "n_nodes"),  # float, even integral, rejected
        ({"n_nodes": 2, "interconnect_gbps": 0.0}, "interconnect_gbps"),
        ({"n_nodes": 2, "interconnect_gbps": -1.0}, "interconnect_gbps"),
        ({"n_nodes": 2, "interconnect_gbps": math.inf},
         "interconnect_gbps"),
        ({"n_nodes": 2, "interconnect_gbps": math.nan},
         "interconnect_gbps"),
        ({"n_nodes": 2, "mpi_latency_us": -0.5}, "mpi_latency_us"),
        ({"n_nodes": 2, "mpi_latency_us": math.nan}, "mpi_latency_us"),
        ({"n_nodes": 2, "messages_per_layer": -1}, "messages_per_layer"),
        ({"n_nodes": 2, "messages_per_layer": 1.5}, "messages_per_layer"),
    ])
    def test_rejects_bad_fields_with_attribution(self, kwargs, field):
        # Regression: inf bandwidth / NaN latency used to flow through
        # the estimate arithmetic and come back as NaN time or zero
        # communication instead of an error.
        with pytest.raises(ClusterConfigError) as excinfo:
            ClusterConfig(**kwargs)
        assert excinfo.value.field == field
        assert field in str(excinfo.value)

    def test_error_is_a_value_error(self):
        # Back-compat: callers catching plain ValueError keep working.
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=2, interconnect_gbps=math.nan)

    def test_structured_payload(self):
        with pytest.raises(ClusterConfigError) as excinfo:
            ClusterConfig(n_nodes=2, mpi_latency_us=math.inf)
        payload = excinfo.value.payload()
        assert payload["kind"] == "cluster-config"
        assert payload["field"] == "mpi_latency_us"
        assert payload["value"] == repr(math.inf)
        assert payload["reason"]

    def test_defaults_are_valid(self):
        assert ClusterConfig(n_nodes=4).interconnect_gbps == 12.5


class TestMultinodeEnvelope:
    def test_in_band_time_passes(self):
        node = PIUMAConfig.node()
        analytical = piuma_multinode_spmm_time(10_000, 100_000, 64, node, 4)
        assert multinode_envelope_failure(
            analytical * 2.0, 10_000, 100_000, 64, node, 4
        ) is None

    @pytest.mark.parametrize("kernel", sorted(MULTINODE_ENVELOPES))
    def test_out_of_band_time_names_the_breach(self, kernel):
        node = PIUMAConfig.node()
        analytical = piuma_multinode_spmm_time(10_000, 100_000, 64, node, 4)
        low, high = MULTINODE_ENVELOPES[kernel]
        detail = multinode_envelope_failure(
            analytical * high * 10, 10_000, 100_000, 64, node, 4,
            kernel=kernel,
        )
        assert detail is not None
        assert kernel in detail and f"[{low}, {high}]" in detail
        assert multinode_envelope_failure(
            analytical * low / 10, 10_000, 100_000, 64, node, 4,
            kernel=kernel,
        ) is not None


class TestCutFraction:
    def test_single_node_no_cut(self, small_rmat):
        assert measure_cut_fraction(small_rmat, 1) == 0.0

    def test_cut_grows_with_nodes(self, small_rmat):
        cuts = [measure_cut_fraction(small_rmat, n) for n in (2, 4, 8)]
        assert 0 < cuts[0] <= cuts[1] <= cuts[2] <= 1


class TestDistributedSpMM:
    def test_communication_dominates_at_scale(self):
        """The COST-style point (Section V-A): MPI halo exchange eats
        the gains of adding CPU nodes for cut-heavy graphs."""
        est = distributed_spmm_time(
            2_449_029, 64_000_000, 256, XeonConfig(),
            ClusterConfig(n_nodes=16), cut_fraction=0.8,
        )
        assert est.communication_share > 0.5

    def test_single_node_has_no_comm(self):
        est = distributed_spmm_time(
            100_000, 1_000_000, 64, XeonConfig(),
            ClusterConfig(n_nodes=1), cut_fraction=0.5,
        )
        assert est.communication_ns == 0.0

    def test_piuma_scales_without_comm(self):
        node = PIUMAConfig.node()
        one = piuma_multinode_spmm_time(2_449_029, 64_000_000, 256, node, 1)
        four = piuma_multinode_spmm_time(2_449_029, 64_000_000, 256, node, 4)
        assert four == pytest.approx(one / 4)

    def test_piuma_cluster_beats_cpu_cluster(self):
        """Same node count: DGAS vs MPI on a cut-heavy graph."""
        cpu = distributed_spmm_time(
            2_449_029, 64_000_000, 256, XeonConfig(),
            ClusterConfig(n_nodes=4), cut_fraction=0.7,
        )
        piuma = piuma_multinode_spmm_time(
            2_449_029, 64_000_000, 256, PIUMAConfig.node(), 4
        )
        assert piuma < cpu.time_ns

    def test_validation(self):
        with pytest.raises(ValueError):
            distributed_spmm_time(
                100, 1000, 8, XeonConfig(),
                ClusterConfig(n_nodes=2), cut_fraction=1.5,
            )
