import numpy as np
import pytest

from repro.cpu.config import XeonConfig
from repro.ext.sampling import (
    random_walks,
    walk_time_cpu,
    walk_time_piuma,
)
from repro.piuma.config import PIUMAConfig
from repro.sparse.csr import CSRMatrix


class TestFunctionalWalks:
    def test_shape_and_start(self, small_rmat):
        starts = np.arange(10)
        walks = random_walks(small_rmat, starts, walk_length=5, seed=1)
        assert walks.shape == (10, 6)
        np.testing.assert_array_equal(walks[:, 0], starts)

    def test_steps_follow_edges(self, small_rmat):
        walks = random_walks(small_rmat, [0, 1, 2], walk_length=8, seed=2)
        dense = small_rmat.to_dense()
        for row in walks:
            for u, v in zip(row, row[1:]):
                if u != v:
                    assert dense[u, v] != 0.0
                else:
                    # Self-step allowed only via sink or self-loop.
                    assert small_rmat.row_degrees()[u] == 0 or dense[u, u] != 0

    def test_sink_stays_put(self):
        # Vertex 1 has no out-edges.
        adj = CSRMatrix([0, 1, 1], [1], [1.0], (2, 2))
        walks = random_walks(adj, [0], walk_length=4, seed=0)
        np.testing.assert_array_equal(walks[0], [0, 1, 1, 1, 1])

    def test_deterministic_by_seed(self, small_rmat):
        a = random_walks(small_rmat, [3, 4], 10, seed=7)
        b = random_walks(small_rmat, [3, 4], 10, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_validation(self, small_rmat):
        with pytest.raises(ValueError):
            random_walks(small_rmat, [0], walk_length=-1)
        with pytest.raises(ValueError):
            random_walks(small_rmat, [10**9], walk_length=1)


class TestWalkTiming:
    def test_piuma_beats_cpu_at_scale(self):
        """Section VI: PIUMA 'greatly accelerates random-walk over
        standard CPUs' — massive thread contexts bury the step latency."""
        cpu = walk_time_cpu(1_000_000, 40, XeonConfig())
        piuma = walk_time_piuma(1_000_000, 40, PIUMAConfig.node())
        assert piuma.time_ns < cpu.time_ns / 5

    def test_cpu_contexts_bounded(self):
        est = walk_time_cpu(10**9, 10, XeonConfig())
        assert est.parallel_contexts <= 80 * 10

    def test_small_batch_no_advantage(self):
        """With few walks, PIUMA's extra contexts are idle and its
        longer per-step latency shows."""
        cpu = walk_time_cpu(8, 40, XeonConfig())
        piuma = walk_time_piuma(8, 40, PIUMAConfig.node())
        assert piuma.time_ns > cpu.time_ns

    def test_zero_walks(self):
        assert walk_time_cpu(0, 10, XeonConfig()).time_ns == 0.0
