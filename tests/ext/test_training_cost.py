import pytest

from repro.cpu.config import XeonConfig
from repro.ext.training_cost import compare_training, training_step_cost
from repro.gpu.config import A100Config
from repro.piuma.config import PIUMAConfig
from repro.workloads.gcn_workload import workload_for


@pytest.fixture(scope="module")
def configs():
    return XeonConfig(), A100Config(), PIUMAConfig.node()


class TestTrainingStep:
    def test_backward_costs_more_dense(self, configs):
        xeon, _a100, _node = configs
        est = training_step_cost(workload_for("products", 64), "cpu", xeon)
        assert est.backward.dense == pytest.approx(2 * est.forward.dense)
        assert est.backward.spmm == pytest.approx(est.forward.spmm)

    def test_step_exceeds_inference(self, configs):
        xeon, _a100, _node = configs
        est = training_step_cost(workload_for("products", 64), "cpu", xeon)
        assert est.step_ns > 1.8 * est.forward.total

    def test_epochs_per_hour_positive(self, configs):
        xeon, _a100, _node = configs
        est = training_step_cost(workload_for("arxiv", 64), "cpu", xeon)
        assert est.epochs_per_hour() > 0

    def test_unknown_platform(self, configs):
        xeon, _a100, _node = configs
        with pytest.raises(ValueError):
            training_step_cost(workload_for("arxiv", 8), "tpu", xeon)


class TestCrossPlatformTraining:
    def test_piuma_still_beats_cpu_for_training(self, configs):
        """§VI: the inference advantage carries into training for
        SpMM-heavy workloads (two SpMMs per layer per step)."""
        results = compare_training(workload_for("products", 64), *configs)
        assert results["piuma"].step_ns < results["cpu"].step_ns

    def test_training_shifts_toward_dense_on_piuma(self, configs):
        """Three dense products per layer per step erode PIUMA's edge
        faster in training than in inference."""
        results = compare_training(workload_for("products", 256), *configs)
        piuma = results["piuma"]
        total_dense = piuma.forward.dense + piuma.backward.dense
        assert total_dense / piuma.step_ns > piuma.forward.fraction("dense")

    def test_all_platforms_present(self, configs):
        results = compare_training(workload_for("arxiv", 8), *configs)
        assert set(results) == {"cpu", "gpu", "piuma"}


class TestMarkdownReport:
    def test_subset_report(self):
        from repro.experiments import ExperimentContext
        from repro.report.markdown import generate_report

        text = generate_report(
            ExperimentContext(max_vertices=2048),
            experiments=("table1", "fig9"),
        )
        assert "# Reproduction report" in text
        assert "Table I" in text and "Fig 9" in text
        assert "```" in text

    def test_unknown_experiment_rejected(self):
        from repro.report.markdown import generate_report

        with pytest.raises(KeyError):
            generate_report(experiments=("fig99",))
