import pytest

from repro.ext.heterogeneous import (
    DenseUnit,
    HeterogeneousSoC,
    hetero_gcn_breakdown,
    sweep_dense_units,
)
from repro.piuma.config import PIUMAConfig
from repro.piuma.gcn import gcn_breakdown as piuma_gcn_breakdown
from repro.workloads.gcn_workload import workload_for


@pytest.fixture(scope="module")
def node():
    return PIUMAConfig.node()


@pytest.fixture(scope="module")
def dense_heavy_workload():
    return workload_for("arxiv", 256)  # >75% Dense MM on plain PIUMA


class TestDenseUnit:
    def test_achievable(self):
        unit = DenseUnit(peak_gflops=1000.0, efficiency=0.5)
        assert unit.achievable_gflops == 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DenseUnit(peak_gflops=0.0)
        with pytest.raises(ValueError):
            DenseUnit(efficiency=0.0)
        with pytest.raises(ValueError):
            HeterogeneousSoC(piuma=PIUMAConfig(), n_dense_units=-1)


class TestHeteroBreakdown:
    def test_zero_units_matches_plain_piuma(self, node, dense_heavy_workload):
        soc = HeterogeneousSoC(piuma=node, n_dense_units=0)
        hetero = hetero_gcn_breakdown(dense_heavy_workload, soc)
        plain = piuma_gcn_breakdown(dense_heavy_workload, node)
        assert hetero.total == pytest.approx(plain.total)

    def test_units_cut_dense_time(self, node, dense_heavy_workload):
        soc = HeterogeneousSoC(piuma=node, n_dense_units=4)
        hetero = hetero_gcn_breakdown(dense_heavy_workload, soc)
        plain = piuma_gcn_breakdown(dense_heavy_workload, node)
        assert hetero.dense < plain.dense
        assert hetero.spmm == pytest.approx(plain.spmm)

    def test_never_worse_than_scalar_fallback(self, node):
        """A pathetic accelerator cannot hurt: the scalar pipelines
        remain the fallback."""
        weak = DenseUnit(peak_gflops=1.0, efficiency=0.01)
        soc = HeterogeneousSoC(piuma=node, n_dense_units=1, dense_unit=weak)
        w = workload_for("arxiv", 64)
        assert (hetero_gcn_breakdown(w, soc).total
                <= piuma_gcn_breakdown(w, node).total * 1.0001)


class TestRatioSweep:
    def test_monotone_until_knee(self, node, dense_heavy_workload):
        results = sweep_dense_units(
            dense_heavy_workload, node, (0, 1, 2, 4, 8, 64)
        )
        totals = [results[c].total for c in (0, 1, 2, 4, 8, 64)]
        assert all(b <= a * 1.0001 for a, b in zip(totals, totals[1:]))

    def test_knee_exists(self, node, dense_heavy_workload):
        """Past the knee, more units buy nothing: SpMM+glue floor."""
        results = sweep_dense_units(
            dense_heavy_workload, node, (8, 1024)
        )
        assert results[1024].total > 0.5 * results[8].total

    def test_dense_bound_workload_flips_to_spmm_bound(self, node):
        w = workload_for("arxiv", 256)
        results = sweep_dense_units(w, node, (0, 64))
        assert results[0].fraction("dense") > 0.6
        assert results[64].fraction("dense") < 0.5
