"""Tests for the one-shot markdown report assembler.

``generate_report`` imports the experiment registry lazily (inside the
function), so the run itself is stubbed through the
``repro.experiments`` module attributes — these tests exercise the
document assembly, not the experiments.
"""

import pytest

import repro.experiments as experiments
from repro.experiments import ExperimentContext
from repro.report.markdown import EXPERIMENT_TITLES, generate_report


@pytest.fixture
def stub_runner(monkeypatch):
    """Replace ``run_experiment`` with a recording stub."""
    calls = []

    def fake_run(name, context):
        calls.append(name)
        return f"<{name} body>"

    monkeypatch.setattr(experiments, "run_experiment", fake_run)
    return calls


def test_titles_match_registry():
    # Every section the report promises must exist in the registry
    # (and would otherwise raise KeyError before running anything).
    missing = [n for n in EXPERIMENT_TITLES if n not in experiments.EXPERIMENTS]
    assert missing == []


def test_default_report_runs_everything_in_paper_order(stub_runner):
    doc = generate_report()
    assert stub_runner == list(EXPERIMENT_TITLES)
    for name, title in EXPERIMENT_TITLES.items():
        assert f"## {title}" in doc
        assert f"<{name} body>" in doc


def test_bodies_are_code_fenced(stub_runner):
    doc = generate_report(experiments=["fig5"])
    lines = doc.splitlines()
    body = lines.index("<fig5 body>")
    assert lines[body - 1] == "```"
    assert lines[body + 1] == "```"


def test_subset_runs_only_requested(stub_runner):
    doc = generate_report(experiments=["fig6", "fig5"])
    assert stub_runner == ["fig6", "fig5"]
    assert EXPERIMENT_TITLES["fig2"] not in doc


def test_unknown_experiment_rejected_before_running(stub_runner):
    with pytest.raises(KeyError, match="fig99"):
        generate_report(experiments=["fig5", "fig99"])
    assert stub_runner == []


def test_custom_heading_is_first_line(stub_runner):
    doc = generate_report(experiments=["fig5"], heading="# My run")
    assert doc.splitlines()[0] == "# My run"


def test_default_heading_and_context_note(stub_runner):
    context = ExperimentContext()
    doc = generate_report(context=context, experiments=["fig5"])
    assert doc.startswith("# Reproduction report")
    assert f"{context.max_vertices:,}" in doc


def test_unregistered_title_falls_back_to_name(stub_runner, monkeypatch):
    monkeypatch.setitem(experiments.EXPERIMENTS, "extra", object())
    doc = generate_report(experiments=["extra"])
    assert "## extra" in doc
