import numpy as np
import pytest

from repro.core.breakdown import ExecutionBreakdown
from repro.report.figures import (
    breakdown_chart,
    contour_map,
    series_chart,
    stacked_bar,
)
from repro.report.tables import format_number, format_table, format_time_ns


class TestTables:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table I")
        assert out.startswith("Table I")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["only", "headers"], [])
        assert "only" in out

    def test_format_number(self):
        assert format_number(1234567) == "1,234,567"
        assert format_number(3.14159, digits=1) == "3.1"

    def test_format_time(self):
        assert format_time_ns(2.5e9) == "2.50 s"
        assert format_time_ns(3.2e6) == "3.20 ms"
        assert format_time_ns(4.5e3) == "4.50 us"
        assert format_time_ns(12) == "12 ns"


class TestStackedBar:
    def test_width_respected(self):
        bar = stacked_bar(ExecutionBreakdown(spmm=1, dense=1), width=40)
        assert len(bar) == 42  # plus two pipes

    def test_dominant_category_dominates(self):
        bar = stacked_bar(ExecutionBreakdown(spmm=9, dense=1), width=50)
        assert bar.count("#") > 40

    def test_empty_breakdown(self):
        bar = stacked_bar(ExecutionBreakdown(), width=20)
        assert bar == "|" + " " * 20 + "|"

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            stacked_bar(ExecutionBreakdown(spmm=1), width=4)


class TestCharts:
    def test_breakdown_chart_includes_legend(self):
        chart = breakdown_chart(
            [("arxiv", ExecutionBreakdown(spmm=1, dense=1))]
        )
        assert "#=spmm" in chart
        assert "arxiv" in chart

    def test_series_chart_rows(self):
        chart = series_chart(
            [1, 2, 4], [("dma", [1.0, 2.0, 4.0]), ("loop", [1.0, 1.5, 2.0])],
            x_label="cores",
        )
        lines = chart.splitlines()
        assert len(lines) == 4
        assert "cores" in lines[0] and "dma" in lines[0]

    def test_contour_map_renders(self):
        grid = np.array([[0.2, 0.5], [0.7, 0.9]])
        out = contour_map(grid, [1e3, 1e6], [1e-5, 1e-3])
        assert "levels:" in out
        assert "#" in out  # the 0.9 cell

    def test_contour_map_rejects_many_levels(self):
        grid = np.zeros((1, 1))
        with pytest.raises(ValueError):
            contour_map(grid, [1], [1], levels=(0.1, 0.2, 0.3, 0.4))
