import pytest

from repro.cpu.config import XeonConfig
from repro.gpu.config import A100Config
from repro.piuma.config import PIUMAConfig
from repro.report.roofline import (
    KernelPoint,
    Roofline,
    cpu_roofline,
    gpu_roofline,
    piuma_roofline,
    render_roofline,
    spmm_kernel_point,
)


class TestRoofline:
    def test_ridge(self):
        r = Roofline("m", peak_gflops=1000.0, bandwidth_gbps=100.0)
        assert r.ridge_intensity == 10.0

    def test_attainable_below_ridge_is_bandwidth(self):
        r = Roofline("m", 1000.0, 100.0)
        assert r.attainable(2.0) == 200.0
        assert r.bound(2.0) == "memory"

    def test_attainable_above_ridge_is_peak(self):
        r = Roofline("m", 1000.0, 100.0)
        assert r.attainable(50.0) == 1000.0
        assert r.bound(50.0) == "compute"

    def test_validation(self):
        with pytest.raises(ValueError):
            Roofline("m", 0.0, 1.0)
        with pytest.raises(ValueError):
            Roofline("m", 1.0, 1.0).attainable(0.0)


class TestPlatformRooflines:
    def test_spmm_memory_bound_everywhere(self):
        """The paper's premise: SpMM sits below every ridge."""
        point = spmm_kernel_point(
            2_449_029, 64_308_169, 256, achieved_gflops=100.0,
            element_bytes={"row": 4, "col": 4, "nnz": 4, "feature": 4},
        )
        for roofline in (
            cpu_roofline(XeonConfig()),
            gpu_roofline(A100Config()),
            piuma_roofline(PIUMAConfig.node()),
        ):
            assert roofline.bound(point.intensity) == "memory", roofline.name

    def test_piuma_ridge_far_left_of_cpu(self):
        """No SIMD: PIUMA turns compute-bound at a much lower intensity
        than the Xeon — why Dense MM hurts it (Fig 10)."""
        piuma = piuma_roofline(PIUMAConfig.node())
        cpu = cpu_roofline(XeonConfig())
        assert piuma.ridge_intensity < cpu.ridge_intensity

    def test_dense_mm_compute_bound_on_cpu(self):
        # GEMM at K=256: AI ~ K/2 per streamed byte >> ridge.
        cpu = cpu_roofline(XeonConfig())
        gemm_intensity = 2 * 256 * 256 / ((256 + 256) * 4)
        assert cpu.bound(gemm_intensity) == "compute"

    def test_kernel_efficiency(self):
        r = Roofline("m", 1000.0, 100.0)
        k = KernelPoint("spmm", intensity=1.0, achieved_gflops=80.0)
        assert k.efficiency_on(r) == pytest.approx(0.8)


class TestRendering:
    def test_render_contains_all_kernels(self):
        r = Roofline("m", 1000.0, 100.0)
        kernels = [
            KernelPoint("spmm", 0.5, 40.0),
            KernelPoint("gemm", 64.0, 900.0),
        ]
        text = render_roofline(r, kernels)
        assert "spmm" in text and "gemm" in text
        assert "ridge" in text
        assert "memory" in text and "compute" in text
