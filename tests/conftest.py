"""Shared fixtures: small deterministic graphs used across the suite."""

import random

import numpy as np
import pytest

from repro.graphs.rmat import RMATParams, rmat_graph
from repro.sparse.csr import CSRMatrix


@pytest.fixture(autouse=True)
def _pin_global_seeds():
    """Reset the global RNGs before every test.

    Library code takes explicit seeds or Generator objects, but a test
    that reaches for ``np.random`` / ``random`` directly must not
    inherit state from whichever test ran before it.
    """
    random.seed(1234)
    np.random.seed(1234)


@pytest.fixture
def tiny_csr():
    """A fixed 4x4 matrix with known structure.

    [[0, 2, 0, 0],
     [1, 0, 3, 0],
     [0, 0, 0, 0],
     [4, 0, 0, 5]]
    """
    indptr = [0, 1, 3, 3, 5]
    indices = [1, 0, 2, 0, 3]
    data = [2.0, 1.0, 3.0, 4.0, 5.0]
    return CSRMatrix(indptr, indices, data, (4, 4))


@pytest.fixture
def small_rmat():
    """A deterministic skewed RMAT graph, 256 vertices, ~2k edges."""
    return rmat_graph(RMATParams(scale=8, edge_factor=8), seed=42, symmetric=True)


@pytest.fixture
def rng():
    return np.random.default_rng(7)
