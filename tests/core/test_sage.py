import numpy as np
import pytest

from repro.core.gcn import GCNConfig
from repro.core.sage import SAGELayer, SAGEModel
from repro.sparse.normalize import row_normalize


class TestSAGELayer:
    def test_initialize_dims(self):
        layer = SAGELayer.initialize(8, 4)
        assert layer.in_dim == 8
        assert layer.out_dim == 4
        assert layer.weight.shape == (16, 4)

    def test_forward_matches_dense_formula(self, small_rmat, rng):
        mean_adj = row_normalize(small_rmat)
        layer = SAGELayer.initialize(8, 4, seed=1)
        h = rng.normal(size=(small_rmat.n_rows, 8))
        aggregated = mean_adj.to_dense() @ h
        expected = np.maximum(
            np.concatenate([h, aggregated], axis=1) @ layer.weight
            + layer.bias,
            0.0,
        )
        np.testing.assert_allclose(
            layer.forward(mean_adj, h), expected, atol=1e-9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SAGELayer(np.ones((5, 4)))  # odd first dim
        with pytest.raises(ValueError):
            SAGELayer(np.ones((4, 3)), bias=np.ones(2))
        with pytest.raises(ValueError):
            SAGELayer(np.ones((4, 3)), activation="gelu")


class TestSAGEModel:
    @pytest.fixture
    def model(self, small_rmat):
        cfg = GCNConfig(in_dim=8, hidden_dim=16, out_dim=4, n_layers=2)
        return SAGEModel(small_rmat, cfg, seed=0)

    def test_forward_shape(self, model):
        out = model.forward(model.random_features())
        assert out.shape == (model.mean_adj.n_rows, 4)

    def test_final_layer_identity(self, model):
        assert model.layers[-1].activation == "identity"

    def test_rejects_bad_features(self, model):
        with pytest.raises(ValueError):
            model.forward(np.ones((3, 8)))

    def test_dense_flops_double_gcn(self, model):
        n = model.mean_adj.n_rows
        gcn_flops = sum(
            2 * n * l.in_dim * l.out_dim for l in model.layers
        )
        assert model.dense_flops() == 2 * gcn_flops

    def test_self_features_matter(self, small_rmat):
        """Unlike GCN, SAGE keeps the vertex's own features separate:
        zeroing the aggregation path still leaves signal."""
        cfg = GCNConfig(in_dim=4, hidden_dim=8, out_dim=2, n_layers=1)
        model = SAGEModel(small_rmat, cfg, seed=2)
        h = model.random_features(seed=3)
        out = model.forward(h)
        # Kill every edge: aggregation becomes zero, output changes but
        # stays non-degenerate (self half of the concat remains).
        from repro.sparse.csr import CSRMatrix

        empty = CSRMatrix(
            np.zeros(small_rmat.n_rows + 1, dtype=np.int64), [], [],
            small_rmat.shape,
        )
        isolated = SAGEModel(empty, cfg, seed=2)
        out_isolated = isolated.forward(h)
        assert np.abs(out_isolated).sum() > 0
        assert not np.allclose(out, out_isolated)
