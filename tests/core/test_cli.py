import json

import pytest

from repro.cli import main


def run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(str(l) for l in lines)


class TestDatasets:
    def test_prints_table1(self):
        code, text = run_cli(["datasets"])
        assert code == 0
        assert "products" in text
        assert "111,059,956" in text  # papers |V|


class TestBreakdown:
    @pytest.mark.parametrize("platform", ["cpu", "gpu", "piuma"])
    def test_platforms(self, platform):
        code, text = run_cli(
            ["breakdown", "arxiv", "--platform", platform, "--hidden", "32"]
        )
        assert code == 0
        assert "total:" in text
        assert "spmm=" in text

    def test_unknown_dataset_is_error(self):
        code, text = run_cli(["breakdown", "reddit"])
        assert code == 2
        assert "error" in text


class TestSpeedup:
    def test_reports_both_platforms(self):
        code, text = run_cli(["speedup", "products", "--hidden", "64"])
        assert code == 0
        assert "piuma" in text and "gpu" in text
        assert "x" in text


class TestSimulate:
    def test_runs_des(self):
        code, text = run_cli(
            ["simulate", "power-12", "--cores", "2", "--hidden", "16",
             "--max-vertices", "2048"]
        )
        assert code == 0
        assert "GFLOP/s" in text
        assert "projected kernel time" in text

    def test_kernel_choices(self):
        code, text = run_cli(
            ["simulate", "power-12", "--cores", "1", "--hidden", "8",
             "--kernel", "vertex", "--max-vertices", "2048"]
        )
        assert code == 0
        assert "vertex" in text


class TestSweep:
    def test_grid_runs_and_reports(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["sweep", "--dataset", "power-12", "--max-vertices", "2048",
                "--cores", "1", "2", "--dims", "8", "--workers", "1"]
        code, text = run_cli(argv)
        assert code == 0
        assert "DES GF" in text and "mem util" in text
        assert "2/2 points" in text
        assert "2 miss(es)" in text
        # Warm rerun: every point served from the cache.
        code, text = run_cli(argv)
        assert code == 0
        assert "2 hit(s)" in text

    def test_no_cache_flag_bypasses(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["sweep", "--dataset", "power-12", "--max-vertices", "1024",
                "--dims", "8", "--cores", "1", "--workers", "1",
                "--no-cache"]
        for _ in range(2):
            code, text = run_cli(argv)
            assert code == 0
            assert "0 hit(s)" in text

    def test_clear_cache_invalidates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["sweep", "--dataset", "power-12", "--max-vertices", "1024",
                "--dims", "8", "--cores", "1", "--workers", "1"]
        run_cli(argv)
        code, text = run_cli(argv + ["--clear-cache"])
        assert code == 0
        assert "cleared 1 cached record(s)" in text
        assert "1 miss(es)" in text


class TestMultinode:
    ARGV = ["multinode", "--dataset", "arxiv", "--nodes", "1", "2",
            "--strategy", "both", "--hidden", "16", "--max-vertices",
            "1024", "--workers", "1"]

    def test_strong_scaling_table_and_figure(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, text = run_cli(self.ARGV)
        assert code == 0
        assert "multi-node strong scaling" in text
        # Per-strategy comparison columns and the scaling figure.
        assert "block" in text and "degree" in text
        assert "comm%" in text and "balance" in text
        assert "speedup[block]" in text and "ideal" in text
        assert "Eq.5 DGAS envelope" in text
        assert "held at every point" in text
        assert "full-scale projection (arxiv)" in text

    def test_json_artifact(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        artifact = tmp_path / "out" / "multinode.json"
        code, text = run_cli(
            self.ARGV + ["--strategy", "block", "--json", str(artifact)]
        )
        assert code == 0
        data = json.loads(artifact.read_text())
        assert data["strategies"] == ["block"]
        assert [r["n_nodes"] for r in data["rows"]] == [1, 2]
        assert all("cut_fraction" in r and "balance" in r
                   for r in data["rows"])

    def test_shard_records_cached_across_runs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        run_cli(self.ARGV)
        code, text = run_cli(self.ARGV)
        assert code == 0
        assert "held at every point" in text

    def test_rejects_nonpositive_nodes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, text = run_cli(self.ARGV + ["--nodes", "0"])
        assert code == 2
        assert "error" in text


class TestAdvise:
    def test_dense_graph_accelerator_favored(self):
        code, text = run_cli(["advise", "1000000", "1e-4"])
        assert code == 0
        assert "accelerator-favored" in text

    def test_sparse_small_graph_cpu_favored(self):
        code, text = run_cli(["advise", "50000", "1e-6", "--hidden", "256"])
        assert code == 0
        assert "CPU/GPU-favored" in text

    def test_invalid_density_is_error(self):
        code, text = run_cli(["advise", "1000", "5.0"])
        assert code == 2


class TestCalibrate:
    def test_runs_small_grid(self):
        code, text = run_cli(
            ["calibrate", "--dataset", "power-12", "--max-vertices", "4096",
             "--cores", "1", "2", "--dims", "8", "64"]
        )
        assert code == 0
        assert "recommended" in text
        assert "efficiency" in text


class TestValidate:
    def test_self_test_passes(self):
        code, text = run_cli(
            ["validate", "--dataset", "power-12", "--max-vertices", "4096",
             "--hidden", "32"]
        )
        assert code == 0
        assert text.count("[PASS]") == 3


class TestRooflineCommand:
    @pytest.mark.parametrize("platform", ["cpu", "gpu", "piuma"])
    def test_platforms(self, platform):
        code, text = run_cli(["roofline", "--platform", platform])
        assert code == 0
        assert "ridge" in text
        assert "spmm" in text


class TestCacheCommand:
    def seed(self, tmp_path, monkeypatch, n=3):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        import os

        from repro.runtime import ResultCache

        cache = ResultCache()
        for i in range(n):
            cache.put(f"{i:064x}", {"fill": "x" * 300})
            path = cache.directory / f"{i:064x}.json"
            os.utime(path, (1_000 + i, 1_000 + i))
        return cache

    def test_stats_reports_size_and_entries(self, tmp_path, monkeypatch):
        self.seed(tmp_path, monkeypatch)
        code, text = run_cli(["cache", "stats", "--entries", "2"])
        assert code == 0
        assert "3 record(s)" in text
        assert "most recently used" in text

    def test_stats_counts_quarantined(self, tmp_path, monkeypatch):
        cache = self.seed(tmp_path, monkeypatch)
        (cache.directory / f"{0:064x}.json").write_text("garbage")
        with pytest.warns(RuntimeWarning):
            assert cache.get(f"{0:064x}") is None
        code, text = run_cli(["cache", "stats"])
        assert code == 0
        assert "1 corrupt" in text

    def test_gc_requires_budget(self, tmp_path, monkeypatch):
        self.seed(tmp_path, monkeypatch)
        code, text = run_cli(["cache", "gc"])
        assert code == 2
        assert "--max-bytes" in text

    def test_gc_evicts_and_reports(self, tmp_path, monkeypatch):
        cache = self.seed(tmp_path, monkeypatch)
        size = (cache.directory / f"{0:064x}.json").stat().st_size
        code, text = run_cli(
            ["cache", "gc", "--max-bytes", str(int(size * 1.5))]
        )
        assert code == 0
        assert "evicted 2" in text
        # The stats view now shows the recorded gc pass.
        code, text = run_cli(["cache", "stats"])
        assert "last gc: evicted 2" in text

    def test_clear_removes_records(self, tmp_path, monkeypatch):
        self.seed(tmp_path, monkeypatch)
        code, text = run_cli(["cache", "clear"])
        assert code == 0
        assert "cleared 3" in text
        code, text = run_cli(["cache", "stats"])
        assert "0 record(s)" in text


class TestServeParser:
    def test_serve_is_registered_with_defaults(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["serve", "--port", "0"])
        assert args.command == "serve"
        assert args.max_pending == 32
        assert args.deadline == 30.0
        assert args.breaker_threshold == 5
        assert not args.no_cache
