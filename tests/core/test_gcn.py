import numpy as np
import pytest

from repro.core.gcn import GCNConfig, GCNModel
from repro.sparse.normalize import gcn_normalize


class TestGCNConfig:
    def test_layer_dims_three_layer(self):
        cfg = GCNConfig(in_dim=100, hidden_dim=64, out_dim=10, n_layers=3)
        assert cfg.layer_dims() == [(100, 64), (64, 64), (64, 10)]

    def test_layer_dims_single_layer(self):
        cfg = GCNConfig(in_dim=7, hidden_dim=64, out_dim=3, n_layers=1)
        assert cfg.layer_dims() == [(7, 3)]

    def test_layer_shapes_activation_flags(self):
        cfg = GCNConfig(in_dim=4, hidden_dim=8, out_dim=2, n_layers=3)
        shapes = cfg.layer_shapes(n_vertices=10, n_edges=30)
        assert [s.has_activation for s in shapes] == [True, True, False]
        assert all(s.n_vertices == 10 and s.n_edges == 30 for s in shapes)

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            GCNConfig(in_dim=4, hidden_dim=8, out_dim=2, n_layers=0)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            GCNConfig(in_dim=0, hidden_dim=8, out_dim=2)


class TestGCNModel:
    @pytest.fixture
    def model(self, small_rmat):
        cfg = GCNConfig(in_dim=8, hidden_dim=16, out_dim=4, n_layers=3)
        return GCNModel(small_rmat, cfg, seed=0)

    def test_layer_count(self, model):
        assert model.n_layers == 3

    def test_final_layer_has_no_activation(self, model):
        assert model.layers[-1].activation == "identity"
        assert all(l.activation == "relu" for l in model.layers[:-1])

    def test_forward_shape(self, model):
        out = model.forward(model.random_features())
        assert out.shape == (model.adj.n_rows, 4)

    def test_forward_rejects_bad_shape(self, model):
        with pytest.raises(ValueError):
            model.forward(np.ones((3, 8)))

    def test_forward_matches_manual_composition(self, model):
        h = model.random_features(seed=5)
        manual = h
        for layer in model.layers:
            manual = layer.forward(model.adj, manual)
        np.testing.assert_allclose(model.forward(h), manual)

    def test_prenormalized_adjacency_accepted(self, small_rmat):
        cfg = GCNConfig(in_dim=8, hidden_dim=16, out_dim=4)
        norm = gcn_normalize(small_rmat)
        m1 = GCNModel(small_rmat, cfg, seed=0)
        m2 = GCNModel(norm, cfg, seed=0, normalized=True)
        h = m1.random_features()
        np.testing.assert_allclose(m1.forward(h), m2.forward(h))

    def test_deterministic_by_seed(self, small_rmat):
        cfg = GCNConfig(in_dim=8, hidden_dim=16, out_dim=4)
        h = np.ones((small_rmat.n_rows, 8))
        out1 = GCNModel(small_rmat, cfg, seed=3).forward(h)
        out2 = GCNModel(small_rmat, cfg, seed=3).forward(h)
        np.testing.assert_array_equal(out1, out2)

    def test_output_finite(self, model):
        out = model.forward(model.random_features())
        assert np.all(np.isfinite(out))
