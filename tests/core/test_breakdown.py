import pytest

from repro.core.breakdown import CATEGORIES, ExecutionBreakdown, combine


class TestBreakdown:
    def test_total(self):
        b = ExecutionBreakdown(spmm=1.0, dense=2.0, glue=0.5)
        assert b.total == 3.5

    def test_fractions_sum_to_one(self):
        b = ExecutionBreakdown(spmm=3.0, dense=1.0, offload=1.0)
        assert sum(b.fraction(c) for c in CATEGORIES) == pytest.approx(1.0)

    def test_zero_total_fractions(self):
        assert ExecutionBreakdown().fraction("spmm") == 0.0

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            ExecutionBreakdown().fraction("io")

    def test_percentages(self):
        b = ExecutionBreakdown(spmm=1.0, dense=3.0)
        pct = b.percentages()
        assert pct["spmm"] == 25.0
        assert pct["dense"] == 75.0
        assert pct["sampling"] == 0.0

    def test_addition(self):
        a = ExecutionBreakdown(spmm=1.0, glue=0.5)
        b = ExecutionBreakdown(spmm=2.0, dense=1.0)
        c = a + b
        assert c.spmm == 3.0 and c.dense == 1.0 and c.glue == 0.5

    def test_scaled(self):
        b = ExecutionBreakdown(spmm=2.0, sampling=4.0).scaled(0.5)
        assert b.spmm == 1.0 and b.sampling == 2.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            ExecutionBreakdown().scaled(-1)

    def test_combine(self):
        parts = [ExecutionBreakdown(spmm=1.0)] * 3
        assert combine(parts).spmm == 3.0

    def test_combine_empty(self):
        assert combine([]).total == 0.0
