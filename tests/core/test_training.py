import numpy as np
import pytest

from repro.core.gcn import GCNConfig, GCNModel
from repro.core.loss import accuracy, cross_entropy, softmax
from repro.core.optim import SGD, Adam
from repro.core.training import GCNTrainer
from repro.graphs.rmat import RMATParams, rmat_graph


@pytest.fixture
def setup():
    """A small two-community graph with learnable labels."""
    adj = rmat_graph(RMATParams(scale=7, edge_factor=8), seed=5,
                     symmetric=True)
    model = GCNModel(
        adj, GCNConfig(in_dim=8, hidden_dim=16, out_dim=4, n_layers=2),
        seed=3,
    )
    rng = np.random.default_rng(0)
    features = rng.normal(size=(adj.n_rows, 8))
    labels = rng.integers(0, 4, adj.n_rows)
    return model, features, labels


class TestLoss:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(10, 5)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = cross_entropy(logits, [0, 1])
        assert loss < 1e-6

    def test_gradient_zero_outside_mask(self, rng):
        logits = rng.normal(size=(6, 3))
        mask = np.array([True, False, True, False, False, False])
        _, dlogits = cross_entropy(logits, rng.integers(0, 3, 6), mask)
        np.testing.assert_array_equal(dlogits[~mask], 0.0)

    def test_validation(self, rng):
        logits = rng.normal(size=(4, 3))
        with pytest.raises(ValueError):
            cross_entropy(logits, [0, 1, 2])  # wrong length
        with pytest.raises(ValueError):
            cross_entropy(logits, [0, 1, 2, 5])  # label out of range
        with pytest.raises(ValueError):
            cross_entropy(logits, [0, 1, 2, 0], np.zeros(4, dtype=bool))

    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 0.0]])
        assert accuracy(logits, [0, 1, 1]) == pytest.approx(2 / 3)
        assert accuracy(logits, [0, 1, 1], np.array([1, 1, 0], bool)) == 1.0


class TestOptimizers:
    def test_sgd_descends_quadratic(self):
        p = np.array([5.0])
        opt = SGD(learning_rate=0.1)
        for _ in range(100):
            opt.step([p], [2 * p])
        assert abs(p[0]) < 1e-3

    def test_sgd_momentum_accelerates(self):
        plain, fast = np.array([5.0]), np.array([5.0])
        a, b = SGD(0.01), SGD(0.01, momentum=0.9)
        for _ in range(50):
            a.step([plain], [2 * plain])
            b.step([fast], [2 * fast])
        assert abs(fast[0]) < abs(plain[0])

    def test_adam_descends_quadratic(self):
        p = np.array([5.0])
        opt = Adam(learning_rate=0.2)
        for _ in range(200):
            opt.step([p], [2 * p])
        assert abs(p[0]) < 1e-2

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam().step([np.zeros(1)], [])


class TestBackward:
    def test_gradients_match_numerical(self, setup):
        """Central-difference check on several weight entries across
        all layers — the autograd correctness anchor."""
        model, features, labels = setup
        trainer = GCNTrainer(model)
        mask = np.zeros(model.adj.n_rows, dtype=bool)
        mask[:40] = True
        logits, tapes = trainer.forward_with_tape(features)
        _, dlogits = cross_entropy(logits, labels, mask)
        grads = trainer.backward(dlogits, tapes)
        for layer_index, position in ((0, (0, 0)), (0, (3, 7)),
                                      (1, (0, 1)), (1, (15, 3))):
            analytic = grads[layer_index][0][position]
            numeric = trainer.numerical_gradient(
                features, labels, mask, layer_index, position
            )
            assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_bias_gradient_matches_numerical(self, setup):
        model, features, labels = setup
        trainer = GCNTrainer(model)
        logits, tapes = trainer.forward_with_tape(features)
        _, dlogits = cross_entropy(logits, labels)
        grads = trainer.backward(dlogits, tapes)
        layer = model.layers[0]
        original = layer.bias[2]
        epsilon = 1e-6

        def loss_at(v):
            layer.bias[2] = v
            loss, _ = cross_entropy(model.forward(features), labels)
            return loss

        numeric = (loss_at(original + epsilon) - loss_at(original - epsilon)) / (
            2 * epsilon
        )
        layer.bias[2] = original
        assert grads[0][1][2] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_forward_with_tape_matches_plain_forward(self, setup):
        model, features, _labels = setup
        trainer = GCNTrainer(model)
        logits, _ = trainer.forward_with_tape(features)
        np.testing.assert_allclose(logits, model.forward(features))


class TestFit:
    def test_loss_decreases(self, setup):
        model, features, labels = setup
        trainer = GCNTrainer(model, Adam(learning_rate=0.02))
        result = trainer.fit(features, labels, epochs=30)
        assert result.losses[-1] < result.losses[0]

    def test_overfits_small_labelled_set(self, setup):
        """Full supervision on a tiny graph should reach high accuracy —
        the end-to-end sanity check that gradients are right."""
        model, features, labels = setup
        trainer = GCNTrainer(model, Adam(learning_rate=0.05))
        trainer.fit(features, labels, epochs=150)
        logits = model.forward(features)
        assert accuracy(logits, labels) > 0.8

    def test_masked_training_only_uses_mask(self, setup):
        model, features, labels = setup
        mask = np.zeros(model.adj.n_rows, dtype=bool)
        mask[:20] = True
        trainer = GCNTrainer(model, Adam(learning_rate=0.05))
        result = trainer.fit(features, labels, mask=mask, epochs=50)
        assert result.train_accuracies[-1] > 0.6

    def test_fit_validates_epochs(self, setup):
        model, features, labels = setup
        with pytest.raises(ValueError):
            GCNTrainer(model).fit(features, labels, epochs=0)
