import pytest

from repro.core.speedup import compare_platforms
from repro.cpu.config import XeonConfig
from repro.gpu.config import A100Config
from repro.piuma.config import PIUMAConfig
from repro.workloads.gcn_workload import workload_for


@pytest.fixture(scope="module")
def configs():
    return XeonConfig(), A100Config(), PIUMAConfig.node()


def comparison(name, k, configs):
    return compare_platforms(workload_for(name, k), *configs)


class TestComparisonAPI:
    def test_three_platforms(self, configs):
        c = comparison("arxiv", 64, configs)
        assert set(c.breakdowns) == {"cpu", "gpu", "piuma"}

    def test_cpu_speedup_is_one(self, configs):
        c = comparison("arxiv", 64, configs)
        assert c.gcn_speedup("cpu") == pytest.approx(1.0)
        assert c.spmm_speedup("cpu") == pytest.approx(1.0)

    def test_unknown_platform(self, configs):
        c = comparison("arxiv", 64, configs)
        with pytest.raises(KeyError):
            c.gcn_speedup("tpu")


class TestFig9Shapes:
    def test_piuma_always_outperforms_cpu(self, configs):
        """Key Takeaway 2 of Section V: 'A single PIUMA node always
        outperforms the CPU system'."""
        for name in ("ddi", "proteins", "arxiv", "collab", "ppa",
                     "mag", "products", "citation2", "papers"):
            for k in (8, 64, 256):
                c = comparison(name, k, configs)
                assert c.gcn_speedup("piuma") > 1.0, (name, k)

    def test_piuma_speedup_decreases_with_k(self, configs):
        """Dense MM pressure: PIUMA's edge shrinks as K grows."""
        speedups = [
            comparison("products", k, configs).gcn_speedup("piuma")
            for k in (8, 64, 256)
        ]
        assert speedups[0] > speedups[1] > speedups[2]

    def test_gpu_speedup_increases_with_k(self, configs):
        """GPU spends less time offloading relative to compute."""
        speedups = [
            comparison("products", k, configs).gcn_speedup("gpu")
            for k in (8, 64, 256)
        ]
        assert speedups[0] < speedups[1] < speedups[2]

    def test_gpu_below_cpu_at_small_k(self, configs):
        """'GPUs actually performed worse than CPUs for lower embedding
        dimensions due to the offloading overhead.'"""
        assert comparison("arxiv", 8, configs).gcn_speedup("gpu") < 1.0

    def test_gpu_above_cpu_at_large_k(self, configs):
        assert comparison("arxiv", 256, configs).gcn_speedup("gpu") > 1.0

    def test_papers_collapses_on_gpu(self, configs):
        """Sampling + offload ruin the GPU for out-of-memory graphs."""
        c = comparison("papers", 64, configs)
        assert c.gcn_speedup("gpu") < 0.2
        assert c.gcn_speedup("piuma") > 1.0

    def test_piuma_spmm_beats_gpu_on_low_locality(self, configs):
        """Fig 9 caption: PIUMA 'significantly outperformed GPU on SpMM
        for graphs with low locality (power-16/power-22)'.  At K=256 the
        feature matrix exceeds the A100 L2 even for power-16, so both
        graphs hit the low-locality HBM regime."""
        for name in ("power-16", "power-22"):
            c = comparison(name, 256, configs)
            assert c.spmm_speedup("piuma") > 2 * c.spmm_speedup("gpu"), name

    def test_spmm_speedups_larger_than_gcn_for_piuma(self, configs):
        """PIUMA accelerates SpMM more than the whole GCN (dense drags)."""
        c = comparison("products", 256, configs)
        assert c.spmm_speedup("piuma") > c.gcn_speedup("piuma")
