import numpy as np
import pytest

from repro.core.gcn import GCNConfig, GCNModel
from repro.core.inference import profile_inference


@pytest.fixture
def model(small_rmat):
    cfg = GCNConfig(in_dim=8, hidden_dim=16, out_dim=4, n_layers=3)
    return GCNModel(small_rmat, cfg, seed=0)


class TestProfileInference:
    def test_output_matches_forward(self, model):
        h = model.random_features(seed=1)
        profile = profile_inference(model, h)
        np.testing.assert_allclose(profile.output, model.forward(h))

    def test_one_profile_per_layer(self, model):
        profile = profile_inference(model, model.random_features())
        assert len(profile.layers) == 3

    def test_traffic_uses_layer_input_dim(self, model):
        profile = profile_inference(model, model.random_features())
        v, e = model.adj.n_rows, model.adj.nnz
        dims = [8, 16, 16]
        for layer_profile, k in zip(profile.layers, dims):
            t = layer_profile.spmm_traffic
            assert t.flops == 2 * e * k
            assert t.write_bytes == k * v * 8

    def test_dense_flops(self, model):
        profile = profile_inference(model, model.random_features())
        v = model.adj.n_rows
        expected = [2 * v * 8 * 16, 2 * v * 16 * 16, 2 * v * 16 * 4]
        assert [p.dense_flops for p in profile.layers] == expected

    def test_glue_ops_final_layer_smaller(self, model):
        """Final layer has bias but no activation -> fewer glue ops/elem."""
        profile = profile_inference(model, model.random_features())
        v = model.adj.n_rows
        assert profile.layers[0].glue_ops == 2 * v * 16
        assert profile.layers[-1].glue_ops == 1 * v * 4

    def test_wall_times_positive(self, model):
        profile = profile_inference(model, model.random_features())
        assert profile.wall.total > 0
        for p in profile.layers:
            assert p.wall.spmm >= 0 and p.wall.dense >= 0

    def test_total_flops_aggregates(self, model):
        profile = profile_inference(model, model.random_features())
        expected = sum(
            p.spmm_traffic.flops + p.dense_flops for p in profile.layers
        )
        assert profile.total_flops == expected
