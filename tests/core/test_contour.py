import numpy as np
import pytest

from repro.core.contour import (
    annotate_datasets,
    contour_grid,
    find_contour_density,
    spmm_fraction,
)
from repro.cpu.config import XeonConfig


@pytest.fixture
def cfg():
    return XeonConfig()


class TestSpMMFraction:
    def test_bounded(self, cfg):
        f = spmm_fraction(100_000, 1e-4, cfg)
        assert 0.0 < f < 1.0

    def test_grows_with_density(self, cfg):
        """Fig 2: 'for a given graph scale, the fraction of execution
        time spent in SpMM increases with the graph density'."""
        fractions = [
            spmm_fraction(100_000, d, cfg) for d in (1e-5, 1e-4, 1e-3)
        ]
        assert fractions[0] < fractions[1] < fractions[2]

    def test_grows_with_scale(self, cfg):
        """Fig 2: 'for a given graph sparsity, the fraction of execution
        time spent in SpMM increases with the graph scale' (|E| grows
        quadratically with |V|; Dense MM only linearly)."""
        fractions = [
            spmm_fraction(v, 1e-4, cfg) for v in (30_000, 100_000, 300_000)
        ]
        assert fractions[0] < fractions[1] < fractions[2]

    def test_validation(self, cfg):
        with pytest.raises(ValueError):
            spmm_fraction(0, 1e-4, cfg)
        with pytest.raises(ValueError):
            spmm_fraction(100, 0.0, cfg)
        with pytest.raises(ValueError):
            spmm_fraction(100, 2.0, cfg)


class TestContourGrid:
    def test_shape_and_range(self, cfg):
        grid = contour_grid([1_000, 10_000], [1e-4, 1e-3, 1e-2], cfg)
        assert grid.shape == (3, 2)
        assert np.all((grid >= 0) & (grid <= 1))

    def test_monotone_along_axes(self, cfg):
        grid = contour_grid(
            [10_000, 100_000, 1_000_000], [1e-6, 1e-5, 1e-4], cfg
        )
        assert np.all(np.diff(grid, axis=0) > 0)  # density up
        assert np.all(np.diff(grid, axis=1) > 0)  # scale up


class TestContourLines:
    def test_contour_density_brackets_level(self, cfg):
        density = find_contour_density(100_000, 0.6, cfg)
        assert density is not None
        assert spmm_fraction(100_000, density, cfg) == pytest.approx(
            0.6, abs=0.02
        )

    def test_contour_falls_with_scale(self, cfg):
        """Larger graphs reach the same SpMM share at lower density —
        Fig 2's contour lines slope downward."""
        d_small = find_contour_density(30_000, 0.6, cfg)
        d_large = find_contour_density(3_000_000, 0.6, cfg)
        assert d_small is not None and d_large is not None
        assert d_large < d_small

    def test_validation(self, cfg):
        with pytest.raises(ValueError):
            find_contour_density(1000, 1.5, cfg)


class TestDatasetAnnotation:
    def test_all_table1_present(self, cfg):
        points = annotate_datasets(cfg)
        assert len(points) == 9
        assert {p.name for p in points} == {
            "ddi", "proteins", "arxiv", "collab", "ppa",
            "mag", "products", "citation2", "papers",
        }

    def test_arxiv_collab_below_60pct(self, cfg):
        """The paper reads Fig 2 as: arxiv and collab 'are expected to
        spend less than 60% execution time in SpMM' at K=256."""
        by_name = {p.name: p for p in annotate_datasets(cfg)}
        assert by_name["arxiv"].spmm_fraction < 0.6
        assert by_name["collab"].spmm_fraction < 0.6

    def test_proteins_products_high(self, cfg):
        """... while proteins and products benefit more from PIUMA."""
        by_name = {p.name: p for p in annotate_datasets(cfg)}
        assert by_name["proteins"].spmm_fraction > 0.7
        assert by_name["products"].spmm_fraction > 0.7
