import numpy as np
import pytest

from repro.core.layers import ACTIVATIONS, GCNLayer, glorot_uniform, identity, relu
from repro.sparse.normalize import gcn_normalize


class TestActivations:
    def test_relu_clips_negatives(self):
        np.testing.assert_allclose(relu(np.array([-1.0, 0.0, 2.0])), [0, 0, 2])

    def test_identity_passthrough(self):
        x = np.array([-1.0, 3.0])
        np.testing.assert_array_equal(identity(x), x)

    def test_registry(self):
        assert set(ACTIVATIONS) == {"relu", "identity"}


class TestGlorot:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        w = glorot_uniform(rng, 100, 50)
        limit = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert np.all(np.abs(w) <= limit)


class TestGCNLayer:
    def test_initialize_shapes(self):
        layer = GCNLayer.initialize(16, 8)
        assert layer.in_dim == 16
        assert layer.out_dim == 8
        assert layer.bias.shape == (8,)

    def test_rejects_bad_bias(self):
        with pytest.raises(ValueError, match="bias"):
            GCNLayer(weight=np.ones((4, 3)), bias=np.ones(4))

    def test_rejects_unknown_activation(self):
        with pytest.raises(ValueError, match="activation"):
            GCNLayer(weight=np.ones((2, 2)), activation="tanh")

    def test_rejects_1d_weight(self):
        with pytest.raises(ValueError, match="2-D"):
            GCNLayer(weight=np.ones(4))

    def test_forward_matches_dense_formula(self, small_rmat, rng):
        adj = gcn_normalize(small_rmat)
        layer = GCNLayer.initialize(8, 4, seed=1)
        h = rng.normal(size=(adj.n_rows, 8))
        expected = np.maximum(
            adj.to_dense() @ h @ layer.weight + layer.bias, 0.0
        )
        np.testing.assert_allclose(layer.forward(adj, h), expected, atol=1e-9)

    def test_phases_compose_to_forward(self, small_rmat, rng):
        adj = gcn_normalize(small_rmat)
        layer = GCNLayer.initialize(8, 4, seed=2)
        h = rng.normal(size=(adj.n_rows, 8))
        step = layer.activate(layer.update(layer.aggregate(adj, h)))
        np.testing.assert_allclose(step, layer.forward(adj, h))

    def test_no_bias(self, small_rmat, rng):
        adj = gcn_normalize(small_rmat)
        layer = GCNLayer.initialize(8, 4, bias=False, seed=3)
        assert layer.bias is None
        h = rng.normal(size=(adj.n_rows, 8))
        expected = np.maximum(adj.to_dense() @ h @ layer.weight, 0.0)
        np.testing.assert_allclose(layer.forward(adj, h), expected, atol=1e-9)
