import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentContext,
    run_experiment,
)


@pytest.fixture(scope="module")
def small_context():
    # Tiny DES graphs so the whole registry runs in seconds.
    return ExperimentContext(max_vertices=4096)


class TestRegistry:
    def test_all_paper_experiments_present(self):
        expected = {"table1"} | {f"fig{i}" for i in range(2, 11)}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_table1(self, small_context):
        text = run_experiment("table1", small_context)
        assert "TABLE I" in text
        assert "111,059,956" in text

    @pytest.mark.parametrize("name", ["fig3", "fig4", "fig10"])
    def test_breakdown_figures(self, small_context, name):
        text = run_experiment(name, small_context)
        assert "spmm=" in text
        assert "papers" in text

    def test_fig2(self, small_context):
        text = run_experiment("fig2", small_context)
        assert "levels:" in text
        assert "arxiv" in text

    def test_fig8(self, small_context):
        text = run_experiment("fig8", small_context)
        assert "STREAM" in text and "PIUMA" in text

    def test_fig9(self, small_context):
        text = run_experiment("fig9", small_context)
        assert "power-22" in text

    @pytest.mark.slow
    def test_des_experiments_run(self, small_context):
        for name in ("fig5", "fig6", "fig7"):
            text = run_experiment(name, small_context)
            assert "cores" in text or "ns" in text

    def test_context_caches_graph(self, small_context):
        g1 = small_context.graph()
        g2 = small_context.graph()
        assert g1 is g2
