import pytest

from repro.cpu.config import XeonConfig
from repro.cpu.numa import (
    numa_bandwidth,
    numa_penalty,
    spmm_time_with_numa,
)
from repro.cpu.spmm import spmm_time
from repro.cpu.stream import stream_bandwidth


@pytest.fixture
def cfg():
    return XeonConfig()


class TestNumaBandwidth:
    def test_local_matches_stream(self, cfg):
        assert numa_bandwidth(80, cfg, "local") == stream_bandwidth(80, cfg)

    def test_ordering(self, cfg):
        """local >= interleave >= remote at every thread count."""
        for n in (8, 40, 80):
            local = numa_bandwidth(n, cfg, "local")
            inter = numa_bandwidth(n, cfg, "interleave")
            remote = numa_bandwidth(n, cfg, "remote")
            assert local >= inter >= remote, n

    def test_remote_upi_capped(self, cfg):
        assert numa_bandwidth(80, cfg, "remote") == pytest.approx(62.4)

    def test_interleave_harmonic(self, cfg):
        local = stream_bandwidth(80, cfg)
        expected = 2.0 / (1.0 / local + 1.0 / 62.4)
        assert numa_bandwidth(80, cfg, "interleave") == pytest.approx(expected)

    def test_single_socket_policy_irrelevant(self):
        one = XeonConfig(n_sockets=1)
        assert numa_bandwidth(40, one, "interleave") == numa_bandwidth(
            40, one, "local"
        )

    def test_low_thread_counts_barely_penalized(self, cfg):
        """Few threads do not saturate UPI either."""
        assert numa_penalty(2, cfg, "interleave") < numa_penalty(
            80, cfg, "interleave"
        )

    def test_validation(self, cfg):
        with pytest.raises(ValueError):
            numa_bandwidth(8, cfg, "striped")
        with pytest.raises(ValueError):
            numa_bandwidth(8, cfg, "remote", upi_gbps=0)

    def test_zero_threads(self, cfg):
        assert numa_bandwidth(0, cfg, "interleave") == 0.0


class TestNumaSpMM:
    def test_local_matches_plain_model(self, cfg):
        v, e, k = 2_449_029, 64_000_000, 128
        plain = spmm_time(v, e, k, cfg)
        local = spmm_time_with_numa(v, e, k, cfg, policy="local")
        assert local.time_ns == pytest.approx(plain.time_ns)

    def test_remote_policy_hurts_large_graphs(self, cfg):
        v, e, k = 2_449_029, 64_000_000, 128
        local = spmm_time_with_numa(v, e, k, cfg, policy="local")
        remote = spmm_time_with_numa(v, e, k, cfg, policy="remote")
        assert remote.time_ns > 2 * local.time_ns

    def test_cached_graphs_less_policy_sensitive(self, cfg):
        """Cache-resident feature gathers are socket-local under every
        policy, so a cached graph's NUMA penalty (CSR/write streams
        only) is smaller than an uncached graph's (everything remote)."""

        def penalty(v, e, k, skew):
            local = spmm_time_with_numa(v, e, k, cfg, skew=skew,
                                        policy="local")
            remote = spmm_time_with_numa(v, e, k, cfg, skew=skew,
                                         policy="remote")
            return remote.time_ns / local.time_ns

        cached = penalty(4_267, 1_339_156, 8, skew=0.7)        # ddi
        uncached = penalty(2_449_029, 64_000_000, 256, skew=0.0)
        assert cached < uncached
