import pytest

from repro.cpu.cache import feature_hit_rate, feature_working_set
from repro.cpu.config import XeonConfig
from repro.cpu.spmm import spmm_time, spmm_time_edge_parallel


@pytest.fixture
def cfg():
    return XeonConfig()


class TestCacheModel:
    def test_working_set(self):
        assert feature_working_set(1000, 256) == 1000 * 256 * 4

    def test_small_graph_fully_cached(self, cfg):
        # ddi at K=8: a few MB.
        assert feature_hit_rate(4267, 8, cfg) == pytest.approx(0.98)

    def test_huge_graph_mostly_misses(self, cfg):
        # papers at K=256: ~114 GB working set.
        assert feature_hit_rate(111_059_956, 256, cfg, skew=0.3) < 0.15

    def test_hit_rate_decreases_with_k(self, cfg):
        """Key Takeaway 1 of Section III: larger embedding dimensions
        mean fewer vertex embeddings cached."""
        hits = [
            feature_hit_rate(2_449_029, k, cfg) for k in (8, 64, 256)
        ]
        assert hits[0] > hits[1] > hits[2]

    def test_skew_raises_hit_rate(self, cfg):
        uniform = feature_hit_rate(2_449_029, 256, cfg, skew=0.0)
        skewed = feature_hit_rate(2_449_029, 256, cfg, skew=0.8)
        assert skewed > uniform

    def test_skew_validated(self, cfg):
        with pytest.raises(ValueError):
            feature_hit_rate(100, 8, cfg, skew=1.5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            XeonConfig(n_sockets=0)
        with pytest.raises(ValueError):
            XeonConfig(ht_contention=1.5)


class TestSpMMModel:
    def test_positive_time_and_gflops(self, cfg):
        est = spmm_time(100_000, 2_000_000, 64, cfg)
        assert est.time_ns > 0
        assert est.gflops > 0

    def test_memory_bound_for_large_graph(self, cfg):
        est = spmm_time(2_449_029, 64_000_000, 256, cfg, skew=0.3)
        assert est.bound == "memory"

    def test_more_cores_is_faster_up_to_physical(self, cfg):
        t16 = spmm_time(2_449_029, 64_000_000, 256, cfg, n_cores=16).time_ns
        t80 = spmm_time(2_449_029, 64_000_000, 256, cfg, n_cores=80).time_ns
        assert t80 < t16

    def test_hyperthreading_hurts(self, cfg):
        """The Fig 8 mechanism carried into SpMM time."""
        t80 = spmm_time(2_449_029, 64_000_000, 256, cfg, n_cores=80).time_ns
        t160 = spmm_time(2_449_029, 64_000_000, 256, cfg, n_cores=160).time_ns
        assert t160 > t80

    def test_cached_graph_much_faster_than_uncached(self, cfg):
        """Cache-resident ddi-scale SpMM runs at on-chip bandwidth."""
        small = spmm_time(4_267, 1_339_156, 64, cfg)
        big = spmm_time(2_449_029, 64_308_169, 64, cfg)
        assert small.hit_rate > big.hit_rate
        assert small.gflops > big.gflops


class TestEdgeParallelBaseline:
    def test_atomics_make_it_slower(self, cfg):
        """Section V-A: edge-parallel was slower than vertex-parallel on
        CPU due to atomic-operation overheads."""
        vp = spmm_time(500_000, 10_000_000, 64, cfg)
        ep = spmm_time_edge_parallel(500_000, 10_000_000, 64, cfg)
        assert ep.time_ns > vp.time_ns
        assert ep.gflops < vp.gflops

    def test_penalty_grows_with_embedding_dim(self, cfg):
        def penalty(k):
            vp = spmm_time(500_000, 10_000_000, k, cfg)
            ep = spmm_time_edge_parallel(500_000, 10_000_000, k, cfg)
            return ep.time_ns - vp.time_ns

        assert penalty(256) > penalty(8)
