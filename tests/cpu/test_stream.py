import pytest

from repro.cpu.config import XeonConfig
from repro.cpu.stream import socket_bandwidth, stream_bandwidth


@pytest.fixture
def cfg():
    return XeonConfig()


class TestSocketBandwidth:
    def test_single_core_anchor(self, cfg):
        assert socket_bandwidth(1, cfg) == pytest.approx(cfg.single_core_gbps)

    def test_saturates_below_plateau(self, cfg):
        assert socket_bandwidth(40, cfg) < cfg.stream_socket_gbps

    def test_monotonic(self, cfg):
        values = [socket_bandwidth(n, cfg) for n in range(1, 41)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_zero_cores(self, cfg):
        assert socket_bandwidth(0, cfg) == 0.0


class TestStreamBandwidth:
    def test_second_socket_adds_bandwidth(self, cfg):
        assert stream_bandwidth(80, cfg) > 1.7 * stream_bandwidth(40, cfg)

    def test_peak_at_physical_cores(self, cfg):
        """Fig 8 left: bandwidth peaks at 80 cores then *decreases* under
        hyperthreading contention."""
        peak = stream_bandwidth(80, cfg)
        assert stream_bandwidth(120, cfg) < peak
        assert stream_bandwidth(160, cfg) < stream_bandwidth(120, cfg)

    def test_full_smt_loses_configured_fraction(self, cfg):
        peak = stream_bandwidth(80, cfg)
        floor = stream_bandwidth(160, cfg)
        assert floor == pytest.approx(peak * (1 - cfg.ht_contention))

    def test_clamps_beyond_max_threads(self, cfg):
        assert stream_bandwidth(1000, cfg) == stream_bandwidth(160, cfg)

    def test_zero_threads(self, cfg):
        assert stream_bandwidth(0, cfg) == 0.0

    def test_dual_socket_plateau_realistic(self, cfg):
        """Dual-socket 8380 STREAM lands in the 250-350 GB/s range."""
        assert 250 <= stream_bandwidth(80, cfg) <= 350
