import pytest

from repro.cpu import XeonConfig, cpu_dense_mm_time, cpu_gcn_breakdown
from repro.workloads.gcn_workload import workload_for


@pytest.fixture
def cfg():
    return XeonConfig()


class TestDenseMM:
    def test_compute_bound_square(self, cfg):
        est = cpu_dense_mm_time(1_000_000, 256, 256, cfg)
        assert est.bound == "compute"

    def test_bandwidth_bound_skinny(self, cfg):
        est = cpu_dense_mm_time(10_000_000, 2, 2, cfg)
        assert est.bound == "bandwidth"

    def test_rejects_bad_dims(self, cfg):
        with pytest.raises(ValueError):
            cpu_dense_mm_time(0, 8, 8, cfg)

    def test_gflops_below_peak(self, cfg):
        est = cpu_dense_mm_time(1_000_000, 256, 256, cfg)
        assert est.gflops <= cfg.peak_gflops()


class TestFig3Shapes:
    """Execution-time breakdown claims of Section III-C."""

    def test_large_dense_graphs_spmm_dominated(self, cfg):
        """'more than 80% of time was spent in SpMM' for ppa, products,
        proteins, papers (large and/or dense)."""
        for name in ("proteins", "ppa", "products", "papers"):
            b = cpu_gcn_breakdown(workload_for(name, 256), cfg)
            assert b.fraction("spmm") > 0.75, name

    def test_small_sparse_graphs_below_60pct(self, cfg):
        """Fig 2 annotation: arxiv and collab spend <60% in SpMM at
        embedding dimension 256."""
        for name in ("arxiv", "collab"):
            b = cpu_gcn_breakdown(workload_for(name, 256), cfg)
            assert b.fraction("spmm") < 0.6, name

    def test_cached_graph_spmm_share_stays_dominant(self, cfg):
        """ddi is dense enough that SpMM dominates at every K.  (The
        paper reports its share *rising* with K as it outgrows the
        cache; at Table I's sizes ddi stays cache-resident at every K in
        our capacity model, so we assert dominance and stability —
        recorded as a deviation in EXPERIMENTS.md.)"""
        shares = [
            cpu_gcn_breakdown(workload_for("ddi", k), cfg).fraction("spmm")
            for k in (8, 64, 256)
        ]
        assert all(s > 0.75 for s in shares)
        assert max(shares) - min(shares) < 0.1

    def test_working_set_growth_cuts_hit_rate_mechanism(self, cfg):
        """The mechanism behind the paper's ddi observation, asserted on
        a graph that *does* outgrow the cache across the K sweep:
        products' SpMM goes from partially cached to DRAM-bound."""
        from repro.cpu.spmm import spmm_time

        low = spmm_time(2_449_029, 64_308_169, 8, cfg)
        high = spmm_time(2_449_029, 64_308_169, 256, cfg)
        assert low.hit_rate > high.hit_rate

    def test_absolute_time_grows_with_k(self, cfg):
        times = [
            cpu_gcn_breakdown(workload_for("products", k), cfg).total
            for k in (8, 64, 256)
        ]
        assert times[0] < times[1] < times[2]

    def test_no_gpu_categories(self, cfg):
        b = cpu_gcn_breakdown(workload_for("arxiv", 64), cfg)
        assert b.offload == 0.0 and b.sampling == 0.0

    def test_papers_runs_at_cpu_scale(self, cfg):
        """papers is feasible on CPU (512 GB memory), just slow —
        tens of seconds at K=256."""
        b = cpu_gcn_breakdown(workload_for("papers", 256), cfg)
        assert 5e9 < b.total < 500e9  # between 5 s and 500 s

    def test_explicit_skew_override(self, cfg):
        low = cpu_gcn_breakdown(workload_for("products", 256), cfg, skew=0.0)
        high = cpu_gcn_breakdown(workload_for("products", 256), cfg, skew=0.9)
        assert high.spmm < low.spmm
