"""The sharded axis of the conformance population.

A case may now carry ``(n_shards, partition_strategy)``: the oracle
then runs every shard through the engine matrix (bit-identity per
shard) and holds the *assembled* multi-node estimate inside the
Eq.5-derived DGAS envelope of ``repro.ext.distributed``.  The axis
rides the trailing-draw compatibility rule — populations generated
before it existed are byte-for-byte unchanged.
"""

import pytest

from repro.graphs.partition import PARTITION_STRATEGIES
from repro.testing import generate_cases, run_sharded_case, shrink
from repro.testing.cases import _SHARD_POOL, ConformanceCase
from repro.testing.oracle import (
    assembled_case_estimate,
    case_signature,
    differential_failures,
    run_case,
)


def _first_sharded(n=200, seed=0, healthy=None):
    for case in generate_cases(n, seed=seed):
        if case.n_shards <= 1:
            continue
        if healthy is not None and (case.degradation is None) != healthy:
            continue
        return case
    raise AssertionError("no sharded case in population")


class TestGeneration:
    def test_trailing_draw_keeps_historical_knobs(self):
        # The shard axis is drawn after every historical knob, so the
        # pre-shard fields of the seeded population must match a
        # pinned sample generated before the axis existed.
        case = generate_cases(1, seed=0)[0]
        historical = {
            "scale": case.scale, "edge_factor": case.edge_factor,
            "graph_seed": case.graph_seed, "kernel": case.kernel,
            "embedding_dim": case.embedding_dim, "n_cores": case.n_cores,
            "window_edges": case.window_edges,
        }
        assert historical == {
            "scale": 9, "edge_factor": 16, "graph_seed": 23794,
            "kernel": "loop", "embedding_dim": 16, "n_cores": 4,
            "window_edges": 2048,
        }

    def test_population_contains_sharded_and_monolithic(self):
        cases = generate_cases(60, seed=0)
        shard_counts = {case.n_shards for case in cases}
        assert 1 in shard_counts
        assert shard_counts - {1}, "no sharded case drawn in 60"
        assert shard_counts <= set(_SHARD_POOL)
        strategies = {c.partition_strategy for c in cases if c.n_shards > 1}
        assert strategies <= set(PARTITION_STRATEGIES)

    def test_defaults_keep_old_json_loadable(self):
        # A case serialized before the shard axis has no such keys.
        case = generate_cases(1, seed=0)[0]
        data = case.to_json()
        del data["n_shards"], data["partition_strategy"]
        clone = ConformanceCase.from_json(data)
        assert clone.n_shards == 1
        assert clone.partition_strategy == "block"


class TestShrinking:
    def test_monolithic_tried_first(self):
        case = _first_sharded()
        tried = []
        shrink(case, lambda c: tried.append(c) or False, max_attempts=8)
        assert any(c.n_shards == 1 for c in tried)

    def test_shard_count_halves(self):
        case = _first_sharded()
        if case.n_shards < 4:
            case = ConformanceCase(**{**case.to_json(), "n_shards": 4})
        shrunk = shrink(case, lambda c: c.n_shards >= 2)
        assert shrunk.n_shards == 2


class TestShardedOracle:
    def test_signature_nests_per_shard(self):
        case = _first_sharded()
        shards = run_sharded_case(case, engine="fast")
        sig = case_signature(case, shards)
        assert set(sig) == {f"shard{i}" for i in range(case.n_shards)}
        # Monolithic outcomes keep the historical flat signature.
        mono = generate_cases(1, seed=0)[0]
        flat = case_signature(mono, run_case(mono))
        assert "sim_time_ns" in flat

    def test_assembly_conserves_edges(self):
        case = _first_sharded()
        shards = run_sharded_case(case, engine="fast")
        estimate = assembled_case_estimate(case, shards)
        assert estimate.total_edges == case.graph().nnz
        assert estimate.n_nodes == case.n_shards
        assert estimate.compute_ns > 0

    def test_healthy_sharded_case_passes_all_legs(self):
        case = _first_sharded(healthy=True)
        assert differential_failures(case, check_level=2) == []

    def test_degraded_sharded_case_skips_envelope(self):
        case = _first_sharded(healthy=False)
        failures = differential_failures(case, check_level=2)
        assert not [f for f in failures
                    if f["check"].startswith("multinode-envelope")]

    @pytest.mark.slow
    def test_engine_matrix_bit_identical_on_sharded_case(self):
        case = _first_sharded(healthy=True)
        assert differential_failures(
            case, check_level=1,
            engines=("fast", "calendar", "vector", "reference"),
        ) == []
