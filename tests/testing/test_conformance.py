"""Tests for the differential conformance subsystem itself.

The acceptance bar from the issue lives here: at least four seeded
accounting perturbations, each caught by its *named* invariant at
``check_level >= 1``, on both engine paths.  The rest covers the
machinery around that bar — deterministic case generation, shrinking,
JSON round-trips, the calibrated Eq. 5 envelopes, and the orchestrator.
"""

import json

import pytest

from repro.runtime.errors import InvariantViolation
from repro.testing import (
    MUTATIONS,
    ConformanceCase,
    differential_failures,
    generate_cases,
    run_case,
    run_conformance,
    run_mutation,
    shrink,
)
from repro.testing.metamorphic import metamorphic_failures
from repro.testing.oracle import ENGINE_BACKENDS, ENVELOPES, model_efficiency


class TestCaseGeneration:
    def test_deterministic(self):
        assert generate_cases(6, seed=3) == generate_cases(6, seed=3)

    def test_prefix_stable_across_population_size(self):
        # "Re-run case 2" means the same case whatever --cases was.
        assert generate_cases(6, seed=3)[:3] == generate_cases(3, seed=3)

    def test_seed_changes_population(self):
        assert generate_cases(4, seed=0) != generate_cases(4, seed=1)

    def test_knobs_drawn_from_pools(self):
        for case in generate_cases(10, seed=0):
            assert case.kernel in ("dma", "loop", "vertex")
            assert case.scale in (7, 8, 9)
            assert case.n_cores in (1, 2, 4, 8)

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            generate_cases(0)

    def test_json_round_trip(self):
        case = generate_cases(1, seed=9)[0]
        clone = ConformanceCase.from_json(
            json.loads(json.dumps(case.to_json()))
        )
        assert clone == case


class TestShrinking:
    def test_shrinks_toward_minimum(self):
        case = generate_cases(1, seed=2)[0]
        # A "failure" that only needs embedding_dim >= 16: everything
        # else should be walked to its floor.
        shrunk = shrink(case, lambda c: c.embedding_dim >= 16)
        assert shrunk.embedding_dim == 16
        assert shrunk.scale == 6
        assert shrunk.n_cores == 1
        assert shrunk.kernel == case.kernel  # never changed
        assert shrunk.name.startswith(case.name)
        assert shrunk.name.endswith("'")

    def test_unshrinkable_failure_returns_original(self):
        case = generate_cases(1, seed=2)[0]
        assert shrink(case, lambda c: c == case) == case

    def test_attempt_budget_respected(self):
        case = generate_cases(1, seed=2)[0]
        calls = []

        def predicate(candidate):
            calls.append(candidate)
            return True

        shrink(case, predicate, max_attempts=5)
        assert len(calls) <= 5


class TestMutationsCaught:
    """The issue's acceptance criterion: >= 4 seeded perturbations,
    each caught by its named invariant at check_level >= 1."""

    def test_at_least_four_level1_mutations(self):
        assert sum(1 for m in MUTATIONS.values() if m.level == 1) >= 4

    @pytest.mark.parametrize("engine", sorted(ENGINE_BACKENDS))
    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_sanitizer_fires_with_exact_attribution(self, name, engine):
        # The full backend matrix: every seeded perturbation must be
        # caught by its named invariant on every main loop, including
        # the vector replay engine (whose deferred bookkeeping must not
        # route around the sanitizer).
        mutation = MUTATIONS[name]
        assert mutation.level >= 1
        error = run_mutation(name, engine=engine)
        assert isinstance(error, InvariantViolation), (
            f"sanitizer missed mutation {name!r} on {engine}"
        )
        assert error.invariant == mutation.invariant

    def test_mutations_are_clean_without_sanitizer(self):
        # Patches restore themselves: a clean run after the whole
        # mutation battery must still pass the full-depth sanitizer.
        case = generate_cases(1, seed=0)[0]
        assert differential_failures(case, check_level=2) == []


class TestOracle:
    def test_envelopes_calibrated(self):
        # Every kernel's DES-vs-Eq.5 efficiency must sit inside its
        # published envelope on the seeded population the harness uses;
        # reshaping the fluid model means recalibrating ENVELOPES.
        seen = set()
        for case in generate_cases(12, seed=0):
            efficiency = model_efficiency(case, run_case(case))
            low, high = ENVELOPES[case.kernel]
            assert low <= efficiency <= high, (
                f"{case.name} ({case.kernel}): {efficiency:.4f} "
                f"outside [{low}, {high}]"
            )
            seen.add(case.kernel)
        assert seen == set(ENVELOPES)

    def test_clean_case_has_no_failures(self):
        case = generate_cases(1, seed=0)[0]
        assert differential_failures(case, check_level=2) == []

    def test_single_engine_skips_bit_identity(self):
        case = generate_cases(1, seed=0)[0]
        assert differential_failures(
            case, check_level=1, engines=("fast",)
        ) == []

    def test_vector_in_engine_matrix(self):
        case = generate_cases(1, seed=0)[0]
        assert differential_failures(
            case, check_level=1, engines=("fast", "vector")
        ) == []

    def test_unknown_engine_rejected(self):
        case = generate_cases(1, seed=0)[0]
        with pytest.raises(KeyError):
            differential_failures(case, engines=("warp",))


def test_metamorphic_relations_hold_on_smoke_case():
    case = generate_cases(1, seed=0)[0]
    assert metamorphic_failures(case) == []


class TestRunConformance:
    def test_small_population_passes(self, tmp_path):
        artifact = tmp_path / "report" / "conformance.json"
        report = run_conformance(
            n_cases=2, seed=0, check_level=2, engine="both",
            metamorphic=False, mutations=False, artifact=artifact,
        )
        assert report.passed
        assert report.cases == 2
        assert report.engines == ("fast", "reference")
        assert "PASS" in report.summary()
        data = json.loads(artifact.read_text())
        assert data["passed"] is True
        assert data["check_level"] == 2

    def test_engine_selection(self):
        report = run_conformance(
            n_cases=1, seed=0, check_level=1, engine="reference",
            metamorphic=False, mutations=False,
        )
        assert report.engines == ("reference",)
        assert report.passed

    def test_vector_engine_selection(self):
        report = run_conformance(
            n_cases=1, seed=0, check_level=1, engine="vector",
            metamorphic=False, mutations=False,
        )
        assert report.engines == ("vector",)
        assert report.passed

    def test_progress_callback_sees_every_case(self):
        lines = []
        report = run_conformance(
            n_cases=2, seed=0, check_level=1, engine="fast",
            metamorphic=False, mutations=False, out=lines.append,
        )
        assert report.passed
        assert sum(": ok" in line for line in lines) == 2
