"""Tests for the user-facing self-test checks in ``validation.verify``.

The tolerance logic is exercised against a stubbed ``simulate_spmm``
(so the boundaries are exact and fast); one real smoke run at the end
keeps the stubs honest against the actual DES.
"""

import types
from dataclasses import dataclass

import pytest

import repro.validation.verify as verify
from repro.graphs.rmat import RMATParams, rmat_graph
from repro.piuma.analytical import element_bytes
from repro.piuma.config import PIUMAConfig
from repro.sparse.spmm import spmm_traffic


@dataclass
class _Stat:
    bytes: float


class _FakeResult:
    def __init__(self, gflops=100.0, sim_time_ns=1000.0, moved=0.0,
                 window_edges=50, total_edges=100):
        self.gflops = gflops
        self.sim_time_ns = sim_time_ns
        self.tag_stats = {"all": _Stat(bytes=moved)}
        self.window_edges = window_edges
        self.total_edges = total_edges


# A stand-in adjacency: conservation only reads n_rows and nnz.
_ADJ = types.SimpleNamespace(n_rows=64, nnz=512)


def _expected_window_bytes(config, embedding_dim=64, window=50, total=100):
    traffic = spmm_traffic(
        _ADJ.n_rows, _ADJ.nnz, embedding_dim, element_bytes(config)
    )
    return traffic.total_bytes * (window / total)


def _patch_results(monkeypatch, results):
    """Feed ``simulate_spmm`` stub results in call order."""
    queue = list(results)
    monkeypatch.setattr(
        verify, "simulate_spmm", lambda *a, **k: queue.pop(0)
    )


class TestConservation:
    @pytest.mark.parametrize("ratio,passed", [
        (1.0, True),
        (1.30, True),   # inside the 35% tolerance
        (0.70, True),
        (1.40, False),  # outside
        (0.60, False),
    ])
    def test_tolerance_boundary(self, monkeypatch, ratio, passed):
        config = PIUMAConfig(n_cores=2)
        moved = _expected_window_bytes(config) * ratio
        _patch_results(monkeypatch, [_FakeResult(moved=moved)])
        report = verify.check_conservation(_ADJ, config=config)
        assert report.name == "conservation"
        assert report.passed is passed
        assert "moved/expected" in report.detail

    def test_custom_tolerance(self, monkeypatch):
        config = PIUMAConfig(n_cores=2)
        moved = _expected_window_bytes(config) * 1.30
        _patch_results(monkeypatch, [_FakeResult(moved=moved)])
        report = verify.check_conservation(
            _ADJ, config=config, tolerance=0.10
        )
        assert not report.passed


class TestMonotonicity:
    def test_passes_when_worse_configs_are_slower(self, monkeypatch):
        _patch_results(monkeypatch, [
            _FakeResult(gflops=100.0),  # nominal
            _FakeResult(gflops=60.0),   # half bandwidth
            _FakeResult(gflops=40.0),   # 720 ns latency
        ])
        report = verify.check_monotonicity(_ADJ)
        assert report.passed
        assert "nominal=100.0" in report.detail

    def test_slack_absorbs_window_noise(self, monkeypatch):
        # 1.2x "faster" under half bandwidth is within the 1.25 slack.
        _patch_results(monkeypatch, [
            _FakeResult(gflops=100.0),
            _FakeResult(gflops=120.0),
            _FakeResult(gflops=90.0),
        ])
        assert verify.check_monotonicity(_ADJ).passed

    def test_fails_beyond_slack(self, monkeypatch):
        _patch_results(monkeypatch, [
            _FakeResult(gflops=100.0),
            _FakeResult(gflops=130.0),  # > 1.25x nominal
            _FakeResult(gflops=90.0),
        ])
        report = verify.check_monotonicity(_ADJ)
        assert not report.passed
        assert "half bandwidth faster" in report.detail

    def test_latency_violation_reported(self, monkeypatch):
        _patch_results(monkeypatch, [
            _FakeResult(gflops=100.0),
            _FakeResult(gflops=90.0),
            _FakeResult(gflops=200.0),  # 16x latency "faster"
        ])
        report = verify.check_monotonicity(_ADJ)
        assert not report.passed
        assert "latency faster" in report.detail


class TestDeterminism:
    def test_identical_runs_pass(self, monkeypatch):
        _patch_results(monkeypatch, [
            _FakeResult(gflops=10.0, sim_time_ns=500.0),
            _FakeResult(gflops=10.0, sim_time_ns=500.0),
        ])
        assert verify.check_determinism(_ADJ).passed

    def test_divergent_runs_fail(self, monkeypatch):
        _patch_results(monkeypatch, [
            _FakeResult(gflops=10.0, sim_time_ns=500.0),
            _FakeResult(gflops=10.0, sim_time_ns=501.0),
        ])
        assert not verify.check_determinism(_ADJ).passed


def test_run_all_checks_aggregates(monkeypatch):
    config = PIUMAConfig(n_cores=2)
    moved = _expected_window_bytes(config)
    _patch_results(monkeypatch, [
        _FakeResult(moved=moved),                       # conservation
        _FakeResult(gflops=100.0),                      # monotonicity x3
        _FakeResult(gflops=60.0),
        _FakeResult(gflops=40.0),
        _FakeResult(gflops=10.0, sim_time_ns=500.0),    # determinism x2
        _FakeResult(gflops=10.0, sim_time_ns=500.0),
    ])
    reports = verify.run_all_checks(_ADJ, config=config)
    assert [r.name for r in reports] == [
        "conservation", "monotonicity", "determinism"
    ]
    assert all(r.passed for r in reports)


@pytest.mark.slow
def test_real_des_passes_all_checks():
    adj = rmat_graph(
        RMATParams(scale=7, edge_factor=8), seed=11, symmetric=True
    )
    reports = verify.run_all_checks(adj, embedding_dim=16)
    assert all(r.passed for r in reports), [
        (r.name, r.detail) for r in reports
    ]
