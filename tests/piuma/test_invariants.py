"""Unit tests for the runtime invariant sanitizer.

Three angles: clean simulations must pass every level with bit-identical
results (the sanitizer observes, it never perturbs), the structured
error must survive the runner's pickling/context machinery, and
``verify_kernel_result`` must reject tampered aggregates.  The
end-to-end "seeded bug is caught" direction lives in
``tests/testing/test_conformance.py``.
"""

import pickle
import types

import pytest

from repro.graphs.rmat import RMATParams, rmat_graph
from repro.piuma import simulate_spmm
from repro.piuma.config import PIUMAConfig
from repro.piuma.invariants import (
    INVARIANTS,
    verify_kernel_result,
    violation,
)
from repro.piuma.resources import Timeline
from repro.runtime.errors import InvariantViolation, wrap_failure


@pytest.fixture(scope="module")
def small_graph():
    return rmat_graph(
        RMATParams(scale=7, edge_factor=8), seed=3, symmetric=True
    )


def _run(adj, kernel, check_level, fast):
    config = PIUMAConfig(
        n_cores=2, check_level=check_level, engine_fast_path=fast
    )
    return simulate_spmm(
        adj, 16, config=config, kernel=kernel, window_edges=512
    )


@pytest.mark.parametrize("kernel", ["dma", "loop", "vertex"])
def test_checking_preserves_bit_identity(small_graph, kernel):
    baseline = _run(small_graph, kernel, check_level=0, fast=True)
    for fast in (True, False):
        for level in (0, 1, 2):
            result = _run(small_graph, kernel, check_level=level, fast=fast)
            assert result.sim_time_ns == baseline.sim_time_ns
            assert result.gflops == baseline.gflops
            assert result.events == baseline.events
            assert result.memory_utilization == baseline.memory_utilization


class TestRegistry:
    def test_levels_are_sane(self):
        for name, (level, description) in INVARIANTS.items():
            assert level in (1, 2), name
            assert description

    def test_violation_builder(self):
        error = violation("event-monotonicity", "went backwards")
        assert isinstance(error, InvariantViolation)
        assert error.invariant == "event-monotonicity"
        assert error.retryable is False
        assert error.kind == "invariant"

    def test_unknown_invariant_rejected(self):
        with pytest.raises(ValueError, match="unknown invariant"):
            violation("made-up-check", "nope")


class TestErrorTaxonomy:
    def test_pickle_round_trip(self):
        error = violation("slice-byte-conservation", "lost 42 bytes")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, InvariantViolation)
        assert clone.invariant == "slice-byte-conservation"
        assert clone.message == "lost 42 bytes"

    def test_with_context_keeps_invariant(self):
        error = violation("stats-recompute", "drift")
        annotated = error.with_context(label="p17", attempts=2)
        assert annotated.invariant == "stats-recompute"
        assert annotated.label == "p17"
        assert annotated.attempts == 2

    def test_wrap_failure_preserves_type(self):
        error = violation("timeline-order", "overlap")
        wrapped = wrap_failure(error, "p3", 1)
        assert isinstance(wrapped, InvariantViolation)
        assert wrapped.retryable is False

    def test_str_names_the_invariant(self):
        assert str(violation("dram-byte-ledger", "off by one")).startswith(
            "dram-byte-ledger:"
        )

    def test_payload_carries_invariant(self):
        assert violation("thread-legality", "x").payload()[
            "invariant"
        ] == "thread-legality"


class TestTimelineValidate:
    def test_healthy_timeline(self):
        timeline = Timeline()
        timeline._starts = [0.0, 10.0, 25.0]
        timeline._ends = [5.0, 20.0, 30.0]
        assert timeline.validate() == []

    def test_detects_overlap(self):
        timeline = Timeline()
        timeline._starts = [0.0, 4.0]
        timeline._ends = [5.0, 9.0]
        assert any("overlaps" in p for p in timeline.validate())

    def test_detects_negative_extent(self):
        timeline = Timeline()
        timeline._starts = [0.0]
        timeline._ends = [-1.0]
        assert any("negative extent" in p for p in timeline.validate())

    def test_detects_diverged_lists(self):
        timeline = Timeline()
        timeline._starts = [0.0, 6.0]
        timeline._ends = [5.0]
        assert any("parallel lists" in p for p in timeline.validate())


class TestConfigValidation:
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_accepts_supported_levels(self, level):
        assert PIUMAConfig(check_level=level).check_level == level

    @pytest.mark.parametrize("level", [-1, 3, 7])
    def test_rejects_unsupported_levels(self, level):
        with pytest.raises(ValueError):
            PIUMAConfig(check_level=level)


class TestVerifyKernelResult:
    """Tamper with one aggregate at a time; each must be rejected."""

    def _consistent(self):
        config = PIUMAConfig(n_cores=1, check_level=1)
        launch = config.launch_overhead_ns
        end = launch + 8000.0
        setup = 500.0
        steady = end - launch - setup
        window, total, k = 400, 1600, 16
        gflops = 2.0 * window * k / steady
        slices = [
            types.SimpleNamespace(busy_time=4000.0, bytes_served=40000.0),
            types.SimpleNamespace(busy_time=2000.0, bytes_served=20000.0),
        ]
        simulator = types.SimpleNamespace(
            end_time=end, events=1234, setup_end=setup, slices=slices
        )
        result = types.SimpleNamespace(
            sim_time_ns=end,
            events=1234,
            window_edges=window,
            total_edges=total,
            embedding_dim=k,
            gflops=gflops,
            projected_time_ns=launch + setup + 2.0 * total * k / gflops,
            memory_utilization=(4000.0 / end + 2000.0 / end) / 2,
            achieved_bandwidth=60000.0 / end,
            tag_stats={
                "nnz": types.SimpleNamespace(count=3, bytes=96.0, wait_ns=1.0)
            },
        )
        return result, simulator, config

    def test_consistent_result_passes(self):
        verify_kernel_result(*self._consistent())

    @pytest.mark.parametrize("tamper", [
        {"sim_time_ns": 9999.0},
        {"events": 1},
        {"gflops": 1.0},
        {"projected_time_ns": 5.0},
        {"memory_utilization": 0.99},
        {"achieved_bandwidth": 3.0},
    ])
    def test_tampered_aggregate_rejected(self, tamper):
        result, simulator, config = self._consistent()
        for name, value in tamper.items():
            setattr(result, name, value)
        with pytest.raises(InvariantViolation) as excinfo:
            verify_kernel_result(result, simulator, config)
        assert excinfo.value.invariant == "result-recompute"

    def test_negative_tag_stats_rejected(self):
        result, simulator, config = self._consistent()
        result.tag_stats["nnz"] = types.SimpleNamespace(
            count=-1, bytes=96.0, wait_ns=1.0
        )
        with pytest.raises(InvariantViolation):
            verify_kernel_result(result, simulator, config)

    def test_out_of_range_utilization_rejected(self):
        result, simulator, config = self._consistent()
        result.memory_utilization = 1.5
        with pytest.raises(InvariantViolation):
            verify_kernel_result(result, simulator, config)
