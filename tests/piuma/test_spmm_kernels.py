"""Kernel-level behavior of the simulated SpMM implementations.

These tests assert the *shapes* the paper reports, on a small RMAT
graph and small PIUMA configs so the whole module runs in seconds.
"""

import pytest

from repro.graphs.rmat import RMATParams, rmat_graph
from repro.piuma import PIUMAConfig, simulate_spmm, spmm_model
from repro.piuma.kernels import auto_window, split_work
from repro.piuma.spmm_loop import nnz_line_core, owner_core


@pytest.fixture(scope="module")
def adj():
    return rmat_graph(RMATParams(scale=12, edge_factor=16), seed=1)


def efficiency(adj, embedding_dim, config, kernel):
    result = simulate_spmm(adj, embedding_dim, config, kernel=kernel)
    model = spmm_model(adj.n_rows, adj.nnz, embedding_dim, config)
    return result.efficiency_vs(model.gflops)


class TestPlacement:
    def test_owner_core_in_range(self):
        for v in range(200):
            assert 0 <= owner_core(v, 8) < 8

    def test_owner_core_spreads_hubs(self):
        """Low-biased RMAT hub ids must not concentrate on slice 0."""
        counts = [0] * 8
        for v in range(0, 4096, 2):  # even ids, low-bit biased
            counts[owner_core(v, 8)] += 1
        assert max(counts) < 2 * min(counts) + 8

    def test_nnz_line_interleaves(self):
        cores = {nnz_line_core(e, 8, 4) for e in range(0, 256, 8)}
        assert cores == {0, 1, 2, 3}


class TestWindowing:
    def test_auto_window_bounds(self):
        cfg = PIUMAConfig(n_cores=1)
        assert auto_window(cfg, 10**9) >= 4096
        assert auto_window(cfg, 10**9) <= 131072
        assert auto_window(cfg, 100) == 100

    def test_split_covers_all_threads(self, adj):
        cfg = PIUMAConfig(n_cores=2)
        work = split_work(adj, cfg, auto_window(cfg, adj.nnz))
        assert len(work) == cfg.n_threads
        cores = {w.core for w in work}
        assert cores == {0, 1}

    def test_split_rows_match_edges(self, adj):
        cfg = PIUMAConfig(n_cores=1)
        for w in split_work(adj, cfg, 2048):
            assert len(w.rows) == len(w.cols)
            # Row of each edge must own it in the CSR.
            for offset in (0, len(w.cols) - 1):
                e = w.start_edge + offset
                r = w.rows[offset]
                assert adj.indptr[r] <= e < adj.indptr[r + 1]


class TestKernelResults:
    def test_rejects_empty_matrix(self):
        from repro.sparse.csr import CSRMatrix

        empty = CSRMatrix([0, 0], [], [], (1, 1))
        with pytest.raises(ValueError):
            simulate_spmm(empty, 8, PIUMAConfig(n_cores=1))

    def test_rejects_unknown_kernel(self, adj):
        with pytest.raises(ValueError):
            simulate_spmm(adj, 8, PIUMAConfig(n_cores=1), kernel="avx")

    def test_projection_scales_with_graph(self, adj):
        cfg = PIUMAConfig(n_cores=1)
        r = simulate_spmm(adj, 8, cfg, window_edges=2048)
        assert r.window_edges <= 2048 + cfg.n_threads
        assert r.projected_time_ns > r.sim_time_ns * 0.5
        assert r.total_edges == adj.nnz

    def test_tag_stats_present(self, adj):
        r = simulate_spmm(adj, 8, PIUMAConfig(n_cores=1), window_edges=2048)
        assert "nnz" in r.tag_stats
        assert "dma_read" in r.tag_stats

    def test_wait_fraction_sums_below_one(self, adj):
        r = simulate_spmm(adj, 8, PIUMAConfig(n_cores=1), window_edges=2048)
        total = sum(r.wait_fraction(t) for t in r.tag_stats)
        assert total == pytest.approx(1.0)


class TestPaperShapes:
    """The headline claims of Section IV, at reduced scale."""

    def test_dma_near_model_single_core(self, adj):
        assert efficiency(adj, 64, PIUMAConfig(n_cores=1), "dma") > 0.85

    def test_dma_within_band_at_eight_cores(self, adj):
        assert efficiency(adj, 64, PIUMAConfig(n_cores=8), "dma") > 0.8

    def test_loop_competitive_at_low_core_count(self, adj):
        assert efficiency(adj, 64, PIUMAConfig(n_cores=2), "loop") > 0.75

    @pytest.mark.slow
    def test_loop_collapses_past_eight_cores(self, adj):
        """Fig 5: loop-unrolled under 40% of the model at high core
        counts while DMA stays close."""
        cfg = PIUMAConfig(n_cores=16)
        loop = efficiency(adj, 64, cfg, "loop")
        dma = efficiency(adj, 64, cfg, "dma")
        assert loop < 0.5
        assert dma > 0.75
        assert dma > 1.8 * loop

    def test_dma_bandwidth_scaling_linear(self, adj):
        """Fig 6 top: throughput linear in DRAM-slice bandwidth."""
        base = simulate_spmm(
            adj, 64, PIUMAConfig(n_cores=2, dram_bandwidth_scale=1.0)
        ).gflops
        double = simulate_spmm(
            adj, 64, PIUMAConfig(n_cores=2, dram_bandwidth_scale=2.0)
        ).gflops
        assert double / base == pytest.approx(2.0, rel=0.15)

    def test_latency_insensitive_with_full_threads(self, adj):
        """Fig 6 bottom: flat up to 360 ns with 16 threads/MTP."""
        cfg = PIUMAConfig(n_cores=2)
        base = simulate_spmm(adj, 64, cfg).gflops
        slow = simulate_spmm(
            adj, 64, cfg.with_(dram_latency_ns=360.0)
        ).gflops
        assert slow > 0.75 * base

    def test_latency_sensitivity_single_thread_small_k(self, adj):
        """Fig 7: one thread/MTP loses latency tolerance at K=8..."""
        cfg = PIUMAConfig(n_cores=2, threads_per_mtp=1)
        base = simulate_spmm(adj, 8, cfg).gflops
        slow = simulate_spmm(adj, 8, cfg.with_(dram_latency_ns=360.0)).gflops
        assert slow < 0.6 * base

    def test_latency_tolerance_single_thread_large_k(self, adj):
        """... but keeps it at K=256 (DMA requests are big enough)."""
        cfg = PIUMAConfig(n_cores=2, threads_per_mtp=1)
        base = simulate_spmm(adj, 256, cfg).gflops
        slow = simulate_spmm(adj, 256, cfg.with_(dram_latency_ns=360.0)).gflops
        assert slow > 0.75 * base

    def test_nnz_traffic_share_shrinks_with_k(self, adj):
        """Fig 8 right: '2-NNZs are read for every 8 DMA reads and
        writes' at K=8 versus every 256 at K=256 — the NNZ share of
        memory traffic collapses as the embedding dimension grows."""
        cfg = PIUMAConfig(n_cores=2)

        def nnz_byte_share(result):
            total = sum(s.bytes for s in result.tag_stats.values())
            return result.tag_stats["nnz"].bytes / total

        small = nnz_byte_share(simulate_spmm(adj, 8, cfg))
        large = nnz_byte_share(simulate_spmm(adj, 256, cfg))
        assert large < small / 8

    def test_deterministic(self, adj):
        cfg = PIUMAConfig(n_cores=2)
        a = simulate_spmm(adj, 16, cfg).gflops
        b = simulate_spmm(adj, 16, cfg).gflops
        assert a == b
