"""The vector replay engine's internals, held to the reference loop.

``tests/piuma/test_engine_fastpath.py`` pins the end-to-end contract
(bit-identical fingerprints across the engine matrix); this suite aims
at the machinery that makes the vector engine fast enough to matter —
the spawn-time plan cache, the fused ``_merge_backfill``, the deferred
integral counters (full and partial settle legs), the tight-loop
delegation, and the fallbacks that keep the engine honest when a run
cannot be batched (mixed generator threads, wrapped DMA dispatch,
checked execution).
"""

import random

import pytest

from repro.graphs.rmat import rmat_for_size
from repro.piuma import simulate_spmm
from repro.piuma.config import PIUMAConfig
from repro.piuma.degradation import DEGRADATION_PRESETS
from repro.piuma.engine import Simulator
from repro.piuma.kernels import split_work
from repro.piuma.ops import DMAOp, OpProgram
from repro.piuma.resources import Timeline
from repro.piuma.spmm_dma import dma_thread
from repro.piuma import vector_engine
from repro.piuma.vector_engine import _merge_backfill
from repro.runtime.errors import SimulationDiverged


def _fingerprint(result):
    return (
        result.sim_time_ns,
        result.gflops,
        result.memory_utilization,
        result.achieved_bandwidth,
        result.events,
        sorted(
            (tag, s.count, s.bytes, s.wait_ns)
            for tag, s in result.tag_stats.items()
        ),
    )


def _adj():
    return rmat_for_size(1024, 1024 * 8, seed=21)


def _sim_fingerprint(sim):
    return (
        sim.end_time,
        sim.events,
        sorted(
            (tag, s.count, s.bytes, s.wait_ns)
            for tag, s in sim.stats.items()
        ),
    )


def _spawn_all(sim, adj, embedding_dim, config, as_programs):
    """Spawn the DMA kernel's threads, compiled or generator-driven."""
    shared = {}
    for work in split_work(adj, config, 2048):
        generator = dma_thread(work, embedding_dim, config, shared=shared)
        if as_programs:
            sim.spawn_program(
                OpProgram.from_generator(generator), work.core, work.mtp
            )
        else:
            sim.spawn(generator, work.core, work.mtp)


class TestMergeBackfill:
    """``_merge_backfill`` is ``Timeline.backfill`` minus the memmoves.

    The contract is *content* equivalence: same returned end and the
    same interval lists after every single call, on adversarial
    sequences that hit all three mutation cases (extend-predecessor,
    overwrite-successor, plain insert).
    """

    def _differential(self, calls):
        timeline = Timeline()
        starts, ends = [], []
        for arrival, duration in calls:
            # Timeline.backfill returns (start, end); the fused
            # version returns only the end (callers never use start).
            _start, want = timeline.backfill(arrival, duration)
            got = _merge_backfill(starts, ends, arrival, duration)
            assert got == want, (arrival, duration)
            assert list(zip(starts, ends)) == timeline._intervals, (
                arrival, duration,
            )

    def test_randomized_sequences(self):
        rng = random.Random(0xBF11)
        for _ in range(50):
            calls = [
                (
                    rng.uniform(0.0, 500.0),
                    rng.choice((0.25, 1.0, 7.5, 40.0)),
                )
                for _ in range(rng.randrange(1, 120))
            ]
            self._differential(calls)

    def test_epsilon_adjacency(self):
        # Intervals landing within 1e-9 of a neighbor must merge
        # exactly as the original's epsilon does.
        self._differential([
            (0.0, 10.0),
            (10.0 + 5e-10, 5.0),      # merges into the predecessor
            (100.0, 10.0),
            (99.0, 0.5),              # backfills before, then merges
            (50.0, 1.0),
            (49.999999999, 1.0),      # epsilon-close on the left
        ])

    def test_backfill_into_gap(self):
        self._differential([
            (0.0, 10.0), (30.0, 10.0), (5.0, 3.0), (5.0, 20.0),
        ])


class TestPlanCache:
    def test_plans_shared_across_threads(self):
        # Interned ops compile once per (op, core, mtp): with one
        # shared table the cache stays far below total op instances.
        config = PIUMAConfig(n_cores=2, threads_per_mtp=2,
                             engine="vector")
        sim = Simulator(config)
        _spawn_all(sim, _adj(), 32, config, as_programs=True)
        state = sim._vector_state
        assert state is not None
        total_steps = sum(
            len(codes) for _idx, codes, _row, _n in state["rows"]
        )
        assert len(state["progs"]) == len(state["rows"])
        assert len(state["cache"]) < total_steps / 4
        # Healthy DMA kernel: every plan defers integrally.
        assert state["taint"] is False

    def test_full_counts_match_partial_leg(self):
        # The compile-time full-run counts must equal what the slow
        # bincount leg computes for a completed run.
        config = PIUMAConfig(n_cores=2, threads_per_mtp=2,
                             engine="vector")
        sim = Simulator(config)
        _spawn_all(sim, _adj(), 32, config, as_programs=True)
        sim.run()
        state = sim._vector_state
        pcs = sim._program_pcs
        partial = vector_engine._partial_uid_counts(
            state["rows"], pcs, len(state["uids"])
        )
        assert partial == state["full"]


class TestEquivalence:
    def test_compiled_matches_generator_driven(self):
        # The same work spawned as compiled programs (vector) and as
        # generators (fast) — the raw simulator state must agree.
        adj = _adj()
        vec_cfg = PIUMAConfig(n_cores=2, threads_per_mtp=2,
                              engine="vector")
        vec = Simulator(vec_cfg)
        _spawn_all(vec, adj, 32, vec_cfg, as_programs=True)
        vec.run()
        fast_cfg = PIUMAConfig(n_cores=2, threads_per_mtp=2)
        fast = Simulator(fast_cfg)
        _spawn_all(fast, adj, 32, fast_cfg, as_programs=False)
        fast.run()
        assert _sim_fingerprint(vec) == _sim_fingerprint(fast)

    def test_mixed_program_and_generator_threads(self):
        # Half the threads compiled, half generator-driven: the run
        # stays live (no deferred settle) and still matches.
        adj = _adj()
        config = PIUMAConfig(n_cores=2, threads_per_mtp=2,
                             engine="vector")
        sim = Simulator(config)
        shared = {}
        work_items = split_work(adj, config, 2048)
        for i, work in enumerate(work_items):
            generator = dma_thread(work, 32, config, shared=shared)
            if i % 2 == 0:
                sim.spawn_program(
                    OpProgram.from_generator(generator),
                    work.core, work.mtp,
                )
            else:
                sim.spawn(generator, work.core, work.mtp)
        sim.run()
        fast_cfg = PIUMAConfig(n_cores=2, threads_per_mtp=2)
        fast = Simulator(fast_cfg)
        _spawn_all(fast, adj, 32, fast_cfg, as_programs=False)
        fast.run()
        assert _sim_fingerprint(sim) == _sim_fingerprint(fast)

    def test_wrapped_dma_dispatch_falls_back(self):
        # Anything that replaces the DMA dispatch entry (the mutation
        # harness, instrumentation) must stay on-path: compile_thread
        # leaves threads generator-driven rather than routing compiled
        # plans around the wrapper.
        adj = _adj()
        config = PIUMAConfig(n_cores=2, threads_per_mtp=2,
                             engine="vector")
        sim = Simulator(config)
        inner = sim._dispatch[DMAOp]
        calls = []

        def wrapper(op, now, core, mtp):
            calls.append(op)
            return inner(op, now, core, mtp)

        sim._dispatch[DMAOp] = wrapper
        _spawn_all(sim, adj, 32, config, as_programs=True)
        state = sim._vector_state
        assert state is None or not state["progs"]
        sim.run()
        assert calls, "wrapped dispatch was never invoked"
        fast_cfg = PIUMAConfig(n_cores=2, threads_per_mtp=2)
        fast = Simulator(fast_cfg)
        _spawn_all(fast, adj, 32, fast_cfg, as_programs=False)
        fast.run()
        assert _sim_fingerprint(sim) == _sim_fingerprint(fast)

    def test_checked_replay_at_level2(self):
        # check_level=2 routes every program step back through the
        # sanitizer's _execute op-by-op; results still bit-identical.
        adj = _adj()
        vec = simulate_spmm(
            adj, 32,
            PIUMAConfig(n_cores=2, engine="vector", check_level=2),
        )
        fast = simulate_spmm(adj, 32, PIUMAConfig(n_cores=2))
        assert _fingerprint(vec) == _fingerprint(fast)


class TestDegradedPresets:
    @pytest.mark.parametrize("preset", sorted(DEGRADATION_PRESETS))
    def test_preset_bit_identical_checked(self, preset):
        # Every shipped degradation preset, sanitizer armed: the
        # vector engine must reproduce the fast path bit-for-bit on a
        # degraded fabric too (stall windows, retries, rerouting).
        adj = _adj()
        spec = DEGRADATION_PRESETS[preset]
        results = {}
        for engine in ("fast", "vector"):
            results[engine] = simulate_spmm(
                adj, 32,
                PIUMAConfig(n_cores=4, check_level=1, engine=engine,
                            degradation=spec),
            )
        assert _fingerprint(results["vector"]) == _fingerprint(
            results["fast"]
        )


class TestWatchdogParity:
    """Divergence ceilings trip at the *same event* on every engine.

    The deferred counters make this subtle: a mid-run raise must
    settle the executed prefix exactly (the partial bincount leg), so
    the structured payloads — cause, event count, simulated time —
    must match the fast path's.
    """

    def _trip(self, engine, **ceilings):
        config = PIUMAConfig(n_cores=2, engine=engine, **ceilings)
        with pytest.raises(SimulationDiverged) as err:
            simulate_spmm(_adj(), 16, config, window_edges=1024)
        return err.value.payload()

    @pytest.mark.parametrize("ceilings", [
        {"max_events": 700},
        {"max_sim_ns": 400.0},
    ], ids=["max_events", "max_sim_ns"])
    def test_trip_payloads_match_fast(self, ceilings):
        assert self._trip("vector", **ceilings) == self._trip(
            "fast", **ceilings
        )

    def test_stall_trip_matches_fast(self):
        # A zero-cost spinner is generator-driven under both engines
        # (no program): the stall detector must fire identically.
        from repro.piuma.ops import Compute

        payloads = {}
        for engine in ("fast", "vector"):
            sim = Simulator(
                PIUMAConfig(n_cores=1, engine=engine, stall_events=100)
            )

            def spinner():
                while True:
                    yield Compute(n_instrs=0, tag="spin")

            sim.spawn(spinner(), 0, 0)
            with pytest.raises(SimulationDiverged) as err:
                sim.run()
            payloads[engine] = err.value.payload()
        assert payloads["vector"] == payloads["fast"]

    def test_partial_settle_is_exact(self):
        # After a max_events trip, the vector engine's settled stats
        # must equal the fast path's live accounting at the same event
        # — the partial (bincount) settle leg, exercised end-to-end.
        stats = {}
        for engine in ("fast", "vector"):
            config = PIUMAConfig(n_cores=2, engine=engine,
                                 max_events=900)
            sim = Simulator(config)
            _spawn_all(sim, _adj(), 16, config,
                       as_programs=(engine == "vector"))
            with pytest.raises(SimulationDiverged):
                sim.run()
            stats[engine] = (
                sim.events,
                sorted(
                    (tag, s.count, s.bytes, s.wait_ns)
                    for tag, s in sim.stats.items()
                ),
            )
        assert stats["vector"] == stats["fast"]
