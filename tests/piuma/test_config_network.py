import pytest

from repro.piuma.config import PIUMAConfig
from repro.piuma.network import Network


class TestConfig:
    def test_defaults_are_one_die(self):
        cfg = PIUMAConfig()
        assert cfg.n_cores == 8
        assert cfg.n_dies == 1

    def test_thread_counts(self):
        cfg = PIUMAConfig(n_cores=2, mtps_per_core=4, threads_per_mtp=16)
        assert cfg.threads_per_core == 64
        assert cfg.n_threads == 128

    def test_node_exceeds_16k_threads(self):
        """Paper: 'A single PIUMA node supports concurrent execution of
        more than 16K threads' (with the STP threads on top)."""
        node = PIUMAConfig.node()
        assert node.n_threads >= 16384

    def test_node_terabyte_bandwidth(self):
        """Paper: 'aggregate ... TB/s bandwidths' per node."""
        node = PIUMAConfig.node()
        assert node.total_bandwidth_gbps >= 1000.0

    def test_bandwidth_scale_knob(self):
        cfg = PIUMAConfig(dram_bandwidth_scale=2.0)
        assert cfg.slice_bandwidth_bytes_per_ns == pytest.approx(51.2)

    def test_with_replaces_fields(self):
        cfg = PIUMAConfig().with_(dram_latency_ns=360.0)
        assert cfg.dram_latency_ns == 360.0
        assert cfg.n_cores == 8

    def test_die_constructor(self):
        assert PIUMAConfig.die().n_cores == 8
        assert PIUMAConfig.die(threads_per_mtp=4).threads_per_mtp == 4

    def test_partial_die_rounds_up(self):
        assert PIUMAConfig(n_cores=9).n_dies == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PIUMAConfig(n_cores=0)
        with pytest.raises(ValueError):
            PIUMAConfig(dram_latency_ns=-1.0)
        with pytest.raises(ValueError):
            PIUMAConfig(dram_bandwidth_scale=0.0)
        with pytest.raises(ValueError):
            PIUMAConfig(threads_per_mtp=0)


class TestNetwork:
    def test_local_is_free(self):
        net = Network(PIUMAConfig(n_cores=8))
        assert net.latency(3, 3) == 0.0

    def test_intra_die(self):
        cfg = PIUMAConfig(n_cores=8)
        net = Network(cfg)
        assert net.latency(0, 7) == cfg.intra_die_latency_ns

    def test_inter_die(self):
        cfg = PIUMAConfig(n_cores=16)
        net = Network(cfg)
        assert net.latency(0, 8) == cfg.inter_die_latency_ns

    def test_symmetry(self):
        net = Network(PIUMAConfig(n_cores=32))
        for pair in ((0, 5), (0, 20), (9, 9)):
            assert net.latency(*pair) == net.latency(*reversed(pair))

    def test_transfer_local_bypasses(self):
        net = Network(PIUMAConfig(n_cores=8))
        assert net.transfer(5.0, 2, 2, 1000) == 5.0

    def test_transfer_remote_adds_latency(self):
        cfg = PIUMAConfig(n_cores=8)
        net = Network(cfg)
        arrival = net.transfer(0.0, 0, 1, 64)
        assert arrival >= cfg.intra_die_latency_ns

    def test_mean_remote_latency_grows_with_system(self):
        small = Network(PIUMAConfig(n_cores=8)).mean_remote_latency()
        large = Network(PIUMAConfig(n_cores=32)).mean_remote_latency()
        assert large > small

    def test_single_core_mean_latency_zero(self):
        assert Network(PIUMAConfig(n_cores=1)).mean_remote_latency() == 0.0

    def test_mean_remote_latency_matches_bruteforce(self):
        """Memoized mean equals the plain average over every destination
        (including the free self hop — stripes touch the local slice)."""
        cfg = PIUMAConfig(n_cores=32)
        net = Network(cfg)
        expected = sum(net.latency(0, dst) for dst in range(32)) / 32
        assert net.mean_remote_latency() == expected

    def test_mean_remote_latency_memoized(self):
        net = Network(PIUMAConfig(n_cores=16))
        first = net.mean_remote_latency()
        assert net.mean_remote_latency() is net._mean_remote
        assert net.mean_remote_latency() == first

    def test_latency_cache_consistent(self):
        """Memoized pair latencies agree with a fresh Network's."""
        cfg = PIUMAConfig(n_cores=16)
        warm = Network(cfg)
        for src in range(16):
            for dst in range(16):
                warm.latency(src, dst)
        cold = Network(cfg)
        for (src, dst), value in warm._latency_cache.items():
            assert cold.latency(src, dst) == value
