import pytest

from repro.piuma.config import PIUMAConfig
from repro.piuma.dma import DMAEngine
from repro.piuma.resources import DRAMSlice


def make_engine(**overrides):
    cfg = PIUMAConfig(**overrides)
    return DMAEngine(0, cfg), cfg


class TestDMAEngine:
    def test_internal_op_engine_only(self):
        engine, cfg = make_engine()
        free, done = engine.submit(0.0, 0)
        assert free == done == pytest.approx(cfg.dma_overhead_ns)

    def test_memory_op_completion_includes_latency(self):
        engine, cfg = make_engine()
        mem = DRAMSlice(cfg.slice_bandwidth_bytes_per_ns, cfg.dram_latency_ns)
        _free, done = engine.submit(0.0, 1024, targets=[(mem, 0)])
        expected = cfg.dma_overhead_ns + 1024 / cfg.slice_bandwidth_bytes_per_ns
        assert done >= cfg.dram_latency_ns
        assert done == pytest.approx(expected + cfg.dram_latency_ns, rel=0.2)

    def test_requests_serialize_in_order(self):
        """Paper: requests to the same engine are serialized on arrival."""
        engine, cfg = make_engine()
        f1, _ = engine.submit(0.0, 1024)
        f2, _ = engine.submit(0.0, 1024)
        assert f2 > f1

    def test_engine_pipelines_past_memory_latency(self):
        """The engine is latency tolerant: it accepts the next request
        before the previous data movement completes."""
        engine, cfg = make_engine(dram_latency_ns=500.0)
        mem = DRAMSlice(cfg.slice_bandwidth_bytes_per_ns, 500.0)
        free, done = engine.submit(0.0, 1024, targets=[(mem, 0)])
        assert free < done

    def test_striped_targets_split_bytes(self):
        engine, cfg = make_engine()
        mems = [
            DRAMSlice(cfg.slice_bandwidth_bytes_per_ns, 0.0) for _ in range(4)
        ]
        engine.submit(0.0, 4096, targets=[(m, i) for i, m in enumerate(mems)])
        for m in mems:
            assert m.bytes_served == pytest.approx(1024)

    def test_credit_backpressure(self):
        """Submissions stall once inflight bytes exceed the staging
        buffer, pacing the engine to the memory drain rate."""
        engine, cfg = make_engine(
            dma_inflight_bytes=2048, dram_latency_ns=1000.0
        )
        mem = DRAMSlice(cfg.slice_bandwidth_bytes_per_ns, 1000.0)
        frees = [
            engine.submit(0.0, 1024, targets=[(mem, 0)])[0] for _ in range(4)
        ]
        # First two fit in the buffer; the third must wait ~a full
        # memory round trip for credits.
        assert frees[1] - frees[0] < 100.0
        assert frees[2] - frees[1] > 500.0

    def test_stats(self):
        engine, cfg = make_engine()
        mem = DRAMSlice(cfg.slice_bandwidth_bytes_per_ns, 0.0)
        engine.submit(0.0, 100, targets=[(mem, 0)])
        engine.submit(0.0, 0)
        assert engine.ops == 2
        assert engine.bytes_moved == 100.0
        assert engine.busy_time > 0
