import pytest

from repro.graphs.rmat import GRAPH500, RMATParams, rmat_graph
from repro.piuma import PIUMAConfig, simulate_spmm
from repro.piuma.spmm_dynamic import make_chunks, simulate_spmm_dynamic


@pytest.fixture(scope="module")
def skewed():
    return rmat_graph(RMATParams(scale=13, edge_factor=16, abcd=GRAPH500),
                      seed=1)


class TestChunking:
    def test_chunks_cover_window(self, skewed):
        cfg = PIUMAConfig(n_cores=2)
        chunks = make_chunks(skewed, cfg, window_edges=8192)
        total = sum(len(cols) for _s, cols, _r in chunks)
        assert total == pytest.approx(8192, rel=0.15)

    def test_rows_per_chunk_respected(self, skewed):
        cfg = PIUMAConfig(n_cores=2)
        coarse = make_chunks(skewed, cfg, 8192, rows_per_chunk=4096)
        fine = make_chunks(skewed, cfg, 8192, rows_per_chunk=64)
        assert len(fine) > len(coarse)

    def test_rows_match_edges(self, skewed):
        cfg = PIUMAConfig(n_cores=1)
        for start, cols, rows in make_chunks(skewed, cfg, 2048):
            assert len(cols) == len(rows)
            e = start
            assert skewed.indptr[rows[0]] <= e < skewed.indptr[rows[0] + 1]


class TestDynamicKernel:
    def test_queue_pops_accounted(self, skewed):
        cfg = PIUMAConfig(n_cores=2)
        result = simulate_spmm_dynamic(skewed, 32, cfg)
        assert "queue_pop" in result.tag_stats
        assert result.tag_stats["queue_pop"].count > 0

    @pytest.mark.slow
    def test_recovers_static_imbalance(self, skewed):
        """Section IV-B completed: dynamic scheduling buys back most of
        the hub imbalance that sinks static vertex-parallel at scale."""
        cfg = PIUMAConfig(n_cores=16)
        static = simulate_spmm(skewed, 64, cfg, "vertex").gflops
        dynamic = simulate_spmm_dynamic(skewed, 64, cfg).gflops
        edge = simulate_spmm(skewed, 64, cfg, "dma").gflops
        assert dynamic > static
        assert dynamic < edge * 1.1  # steal overhead keeps it behind

    def test_deterministic(self, skewed):
        cfg = PIUMAConfig(n_cores=2)
        a = simulate_spmm_dynamic(skewed, 16, cfg).gflops
        b = simulate_spmm_dynamic(skewed, 16, cfg).gflops
        assert a == b

    def test_rejects_empty(self):
        from repro.sparse.csr import CSRMatrix

        empty = CSRMatrix([0, 0], [], [], (1, 1))
        with pytest.raises(ValueError):
            simulate_spmm_dynamic(empty, 8, PIUMAConfig(n_cores=1))
