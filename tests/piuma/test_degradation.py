"""Degraded-fabric model: spec, membership, rerouting, placements.

Covers the deterministic fault-injection layer of the DES
(``repro.piuma.degradation``): spec validation and serialization, the
nested (monotone) membership draws, the link max-rule that keeps the
graceful-degradation curve monotone, thread redistribution over
surviving pipelines, the stall-window arithmetic, the network memo
invalidation (the historical stale-memo hazard), and a randomized
fast-vs-reference differential fuzz under fault specs — the degraded
mirror of ``tests/piuma/test_engine_fastpath.py``.
"""

import random

import pytest

from repro.graphs.rmat import rmat_for_size
from repro.piuma import simulate_spmm
from repro.piuma.config import PIUMAConfig
from repro.piuma.degradation import (
    DEGRADATION_PRESETS,
    DegradationModel,
    DegradationSpec,
    _hit,
    effective_total_bandwidth,
    thread_placements,
)
from repro.piuma.network import Network
from repro.piuma.resources import DRAMSlice
from repro.runtime.errors import HardwareExhausted


class TestSpec:
    def test_defaults_trivial(self):
        assert DegradationSpec().is_trivial
        assert DegradationSpec.at_severity(0.0).is_trivial

    @pytest.mark.parametrize("fields", [
        {"degraded_link_fraction": 1.5},
        {"link_down_fraction": -0.1},
        {"link_latency_scale": 0.5},
        {"slice_bandwidth_derate": 0.0},
        {"slice_bandwidth_derate": 1.5},
        {"stall_period_ns": 100.0, "stall_duration_ns": 100.0},
        {"dma_fail_period": 0},
    ])
    def test_validation(self, fields):
        with pytest.raises(ValueError):
            DegradationSpec(**fields)

    def test_at_severity_range(self):
        with pytest.raises(ValueError):
            DegradationSpec.at_severity(1.5)
        with pytest.raises(ValueError):
            DegradationSpec.at_severity(-0.1)

    def test_json_round_trip(self):
        spec = DegradationSpec.at_severity(0.5, seed=3)
        assert DegradationSpec.from_json(spec.to_json()) == spec

    def test_with_replaces(self):
        spec = DegradationSpec(flaky_dma_fraction=0.5)
        assert spec.with_(flaky_dma_fraction=0.0).is_trivial

    def test_presets_nontrivial(self):
        for name, spec in DEGRADATION_PRESETS.items():
            assert isinstance(spec, DegradationSpec), name
            assert not spec.is_trivial, name

    def test_config_rejects_bad_spec_type(self):
        with pytest.raises(ValueError):
            PIUMAConfig(degradation={"seed": 0})

    def test_trivial_spec_builds_no_model(self):
        assert DegradationModel.for_config(
            PIUMAConfig(degradation=DegradationSpec())
        ) is None
        assert DegradationModel.for_config(PIUMAConfig()) is None


class TestMembership:
    def test_hit_monotone_in_fraction(self):
        """Fixed unit hash vs a growing threshold: sets can only grow."""
        for index in range(64):
            hits = [
                _hit(0, "slice", index, f)
                for f in (0.1, 0.3, 0.5, 0.7, 0.9)
            ]
            assert hits == sorted(hits), index

    def test_membership_deterministic_across_models(self):
        config = PIUMAConfig(n_cores=8)
        spec = DegradationSpec.at_severity(0.5)
        a = DegradationModel(spec, config)
        b = DegradationModel(spec, config)
        assert a.degraded_slices == b.degraded_slices
        assert a.flaky_dma == b.flaky_dma
        assert a.link_state(0, 5) == b.link_state(0, 5)

    def test_severity_sets_nest(self):
        config = PIUMAConfig(n_cores=8)
        models = [
            DegradationModel(DegradationSpec.at_severity(s), config)
            for s in (0.25, 0.5, 1.0)
        ]
        for small, large in zip(models, models[1:]):
            assert small.degraded_slices <= large.degraded_slices
            assert small.stalling_slices <= large.stalling_slices
            for pair in ((0, 1), (2, 5), (3, 7)):
                s_slow, s_down = small.link_state(*pair)
                l_slow, l_down = large.link_state(*pair)
                assert l_slow >= s_slow and l_down >= s_down

    def test_seed_moves_membership(self):
        config = PIUMAConfig(n_cores=64)
        spec = DegradationSpec(degraded_slice_fraction=0.5)
        a = DegradationModel(spec, config)
        b = DegradationModel(spec.with_(seed=99), config)
        assert a.degraded_slices != b.degraded_slices

    def test_dead_dma_excluded_from_flaky(self):
        config = PIUMAConfig(n_cores=16)
        model = DegradationModel(
            DegradationSpec(dead_dma_fraction=0.5, flaky_dma_fraction=1.0),
            config,
        )
        assert not model.dead_dma & model.flaky_dma
        assert model.dead_dma | model.flaky_dma == set(range(16))


class TestLinks:
    def _network(self, spec, n_cores=8):
        config = PIUMAConfig(n_cores=n_cores, degradation=spec)
        return config, Network(config)

    def test_healthy_links_untouched(self):
        config, net = self._network(DegradationSpec(flaky_dma_fraction=0.5))
        healthy = Network(PIUMAConfig(n_cores=8))
        for dst in range(8):
            assert net.latency(0, dst) == healthy.latency(0, dst)

    def test_slow_link_scaled(self):
        spec = DegradationSpec(
            degraded_link_fraction=1.0, link_latency_scale=3.0
        )
        config, net = self._network(spec)
        healthy = Network(PIUMAConfig(n_cores=8))
        assert net.latency(0, 0) == 0.0
        for dst in range(1, 8):
            assert net.latency(0, dst) == 3.0 * healthy.latency(0, dst)

    def test_down_never_undercuts_slow(self):
        """Max-rule: adding link-down on top of slow can only add cost."""
        slow = DegradationSpec(
            degraded_link_fraction=1.0, link_latency_scale=4.0
        )
        both = slow.with_(link_down_fraction=1.0)
        _, slow_net = self._network(slow)
        _, both_net = self._network(both)
        healthy = Network(PIUMAConfig(n_cores=8))
        for dst in range(1, 8):
            assert (healthy.latency(0, dst)
                    <= slow_net.latency(0, dst)
                    <= both_net.latency(0, dst))

    def test_reroute_at_least_direct(self):
        spec = DegradationSpec(link_down_fraction=0.5)
        config, net = self._network(spec)
        healthy = Network(PIUMAConfig(n_cores=8))
        for src in range(8):
            for dst in range(8):
                assert net.latency(src, dst) >= healthy.latency(src, dst)


class TestNetworkEpoch:
    """Regression for the stale-memo hazard: the per-pair latency memo
    must be dropped (and observably so, via the epoch counter) whenever
    the degradation state changes."""

    def test_set_degradation_invalidates_memo(self):
        config = PIUMAConfig(n_cores=8)
        net = Network(config)
        before = net.latency(0, 5)
        mean_before = net.mean_remote_latency()
        assert net.degradation_epoch == 0

        spec = DegradationSpec(
            degraded_link_fraction=1.0, link_latency_scale=4.0
        )
        net.set_degradation(DegradationModel(spec, config))
        assert net.degradation_epoch == 1
        # A stale memo would keep serving the healthy value here.
        assert net.latency(0, 5) == 4.0 * before
        assert net.mean_remote_latency() > mean_before

        net.set_degradation(None)
        assert net.degradation_epoch == 2
        assert net.latency(0, 5) == before
        assert net.mean_remote_latency() == mean_before

    def test_invalidate_bumps_epoch_and_clears(self):
        net = Network(PIUMAConfig(n_cores=4))
        net.latency(0, 1)
        assert net._latency_cache
        net.invalidate()
        assert not net._latency_cache
        assert net.degradation_epoch == 1


class TestThreadPlacements:
    def test_healthy_matches_historical_formula(self):
        config = PIUMAConfig(n_cores=4, threads_per_mtp=8)
        per_core = config.threads_per_core
        per_mtp = config.threads_per_mtp
        expected = [
            (t // per_core, (t % per_core) // per_mtp)
            for t in range(config.n_threads)
        ]
        assert thread_placements(config) == expected

    def test_dead_core_gets_no_threads(self):
        config = PIUMAConfig(
            n_cores=4,
            degradation=DegradationSpec(dead_core_fraction=0.3),
        )
        model = DegradationModel.for_config(config)
        assert model.dead_cores, "fixture spec must kill at least one core"
        placements = thread_placements(config)
        assert len(placements) == config.n_threads
        used = {core for core, _mtp in placements}
        assert not used & model.dead_cores
        assert used == set(range(4)) - model.dead_cores

    def test_all_dead_raises_structured(self):
        config = PIUMAConfig(
            n_cores=2, degradation=DegradationSpec(dead_core_fraction=1.0)
        )
        with pytest.raises(HardwareExhausted) as info:
            thread_placements(config)
        assert info.value.kind == "exhausted"
        assert info.value.retryable is False
        assert info.value.cause == "dead-compute"


class TestStallWindows:
    def test_defer_inside_window(self):
        s = DRAMSlice(1.0, 10.0, stall_period_ns=100.0,
                      stall_duration_ns=20.0)
        assert s._stall_defer(0.0) == 20.0
        assert s._stall_defer(10.0) == 20.0
        assert s._stall_defer(119.9) == pytest.approx(120.0)

    def test_defer_outside_window_identity(self):
        s = DRAMSlice(1.0, 10.0, stall_period_ns=100.0,
                      stall_duration_ns=20.0)
        assert s._stall_defer(20.0) == 20.0
        assert s._stall_defer(55.0) == 55.0

    def test_stall_only_delays_service(self):
        healthy = DRAMSlice(1.0, 10.0)
        stalling = DRAMSlice(1.0, 10.0, stall_period_ns=100.0,
                             stall_duration_ns=20.0)
        for start in (0.0, 5.0, 30.0, 95.0, 130.0):
            assert (stalling.bulk_request(start, 64.0)
                    >= healthy.bulk_request(start, 64.0))

    def test_duration_must_fit_period(self):
        with pytest.raises(ValueError):
            DRAMSlice(1.0, 10.0, stall_period_ns=10.0,
                      stall_duration_ns=10.0)


class TestEffectiveBandwidth:
    def test_healthy_equals_config_aggregate(self):
        config = PIUMAConfig(n_cores=8)
        assert effective_total_bandwidth(config) == \
            config.total_bandwidth_gbps

    def test_full_derate_arithmetic(self):
        spec = DegradationSpec(
            degraded_slice_fraction=1.0, slice_bandwidth_derate=0.5,
            stall_slice_fraction=1.0, stall_period_ns=100.0,
            stall_duration_ns=25.0,
        )
        config = PIUMAConfig(n_cores=4, degradation=spec)
        expected = 4 * config.slice_bandwidth_bytes_per_ns * 0.5 * 0.75
        assert effective_total_bandwidth(config) == pytest.approx(expected)

    def test_monotone_in_severity(self):
        values = [
            effective_total_bandwidth(PIUMAConfig(
                n_cores=8,
                degradation=DegradationSpec.at_severity(s),
            ))
            for s in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert values == sorted(values, reverse=True)


def _fingerprint(result):
    return (
        result.sim_time_ns,
        result.gflops,
        result.projected_time_ns,
        result.memory_utilization,
        result.achieved_bandwidth,
        result.window_edges,
        result.events,
        sorted(
            (tag, s.count, s.bytes, s.wait_ns)
            for tag, s in result.tag_stats.items()
        ),
    )


class TestSimulatorUnderFaults:
    def _adj(self):
        return rmat_for_size(1024, 1024 * 8, seed=3)

    def test_dead_dma_raises_before_completion(self):
        config = PIUMAConfig(
            n_cores=2,
            degradation=DegradationSpec(dead_dma_fraction=1.0),
        )
        with pytest.raises(HardwareExhausted):
            simulate_spmm(self._adj(), 32, config)

    def test_flaky_dma_slower_than_healthy(self):
        healthy = simulate_spmm(
            self._adj(), 32, PIUMAConfig(n_cores=2)
        )
        flaky = simulate_spmm(
            self._adj(), 32, PIUMAConfig(
                n_cores=2,
                degradation=DegradationSpec(
                    flaky_dma_fraction=1.0, dma_fail_period=8,
                    dma_retry_backoff_ns=200.0,
                ),
            ),
        )
        assert flaky.sim_time_ns > healthy.sim_time_ns

    def test_compute_preset_completes_checked(self):
        config = PIUMAConfig(
            n_cores=4, check_level=1,
            degradation=DEGRADATION_PRESETS["compute"],
        )
        result = simulate_spmm(self._adj(), 32, config)
        assert result.sim_time_ns > 0

    def test_healthy_unchanged_by_trivial_spec(self):
        """degradation=None and a trivial spec are the same fabric."""
        base = simulate_spmm(self._adj(), 32, PIUMAConfig(n_cores=2))
        trivial = simulate_spmm(
            self._adj(), 32,
            PIUMAConfig(n_cores=2, degradation=DegradationSpec()),
        )
        assert _fingerprint(base) == _fingerprint(trivial)


class TestDifferentialUnderFaults:
    """Randomized engine-matrix fuzz with degradation armed.

    The degraded mirror of ``test_engine_fastpath.TestDifferential``:
    21 points spanning kernels, core counts, and randomized fault specs
    run through the fast, reference, and vector-replay main loops —
    every fingerprint field must match exactly, and the level-1
    sanitizer runs inside every path.
    """

    def _grid(self):
        rng = random.Random(0xDE64)
        kernels = ("dma", "loop", "vertex")
        points = []
        for i in range(21):
            spec = DegradationSpec(
                seed=rng.randrange(1000),
                degraded_link_fraction=rng.choice((0.0, 0.25, 0.5)),
                link_latency_scale=rng.choice((2.0, 4.0)),
                link_down_fraction=rng.choice((0.0, 0.25)),
                degraded_slice_fraction=rng.choice((0.0, 0.5)),
                slice_bandwidth_derate=rng.choice((0.5, 0.75)),
                stall_slice_fraction=rng.choice((0.0, 0.5)),
                stall_period_ns=20000.0,
                stall_duration_ns=rng.choice((500.0, 2000.0)),
                flaky_dma_fraction=rng.choice((0.0, 0.5)),
                dma_fail_period=rng.choice((16, 64)),
                dma_retry_backoff_ns=100.0,
                dead_core_fraction=rng.choice((0.0, 0.3)),
                dead_mtp_fraction=rng.choice((0.0, 0.25)),
            )
            points.append({
                "n_vertices": rng.choice((512, 1024)),
                "degree": rng.choice((4, 8)),
                "graph_seed": rng.randrange(1000),
                "kernel": kernels[i % len(kernels)],
                "embedding_dim": rng.choice((16, 32)),
                "n_cores": rng.choice((2, 4)),
                "threads_per_mtp": rng.choice((2, 4)),
                "spec": spec,
            })
        return points

    @pytest.mark.parametrize("index", range(21))
    def test_point(self, index):
        point = self._grid()[index]
        adj = rmat_for_size(
            point["n_vertices"],
            point["n_vertices"] * point["degree"],
            seed=point["graph_seed"],
        )
        results = {}
        for name, engine in (
            ("fast", "fast"), ("reference", "reference"),
            ("vector", "vector"),
        ):
            try:
                results[name] = simulate_spmm(
                    adj, point["embedding_dim"],
                    PIUMAConfig(
                        n_cores=point["n_cores"],
                        threads_per_mtp=point["threads_per_mtp"],
                        engine=engine,
                        check_level=1,
                        degradation=point["spec"],
                    ),
                    kernel=point["kernel"],
                )
            except HardwareExhausted as error:
                results[name] = ("exhausted", error.cause)
        fast = results["fast"]
        for name in ("reference", "vector"):
            other = results[name]
            if isinstance(fast, tuple) or isinstance(other, tuple):
                # Structured exhaustion must be engine-independent too.
                assert fast == other, (name, point)
            else:
                assert _fingerprint(fast) == _fingerprint(other), (
                    name, point,
                )
