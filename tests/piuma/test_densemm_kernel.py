import pytest

from repro.core.gcn import GCNConfig
from repro.graphs.rmat import RMATParams, rmat_graph
from repro.piuma.config import PIUMAConfig
from repro.piuma.densemm import dense_mm_time, peak_mac_gflops
from repro.piuma.densemm_kernel import simulate_dense_mm
from repro.piuma.gcn_sim import simulate_gcn, simulate_gcn_layer


@pytest.fixture(scope="module")
def die():
    return PIUMAConfig(n_cores=8)


class TestDenseKernel:
    def test_large_gemm_near_scalar_peak(self, die):
        """Square updates saturate the scalar pipelines (the ref [21]
        observation the paper's Dense MM numbers come from)."""
        result = simulate_dense_mm(50_000, 128, 128, die)
        peak = peak_mac_gflops(die)
        assert 0.6 * peak < result.gflops <= peak
        assert result.pipeline_utilization > 0.9

    def test_skinny_gemm_stream_bound(self, die):
        """Tiny inner dims leave the pipelines idle; DMA streams bind."""
        result = simulate_dense_mm(200_000, 2, 2, die)
        assert result.pipeline_utilization < 0.3
        assert result.gflops < 0.6 * peak_mac_gflops(die)

    def test_des_within_band_of_analytical(self, die):
        """The analytical roofline's efficiency factor (0.65) should be
        conservative relative to the DES measurement."""
        des = simulate_dense_mm(50_000, 128, 128, die)
        model = dense_mm_time(50_000, 128, 128, die)
        assert 0.8 <= des.gflops / model.gflops <= 1.6

    def test_projection_scales(self, die):
        small = simulate_dense_mm(10_000, 64, 64, die)
        large = simulate_dense_mm(1_000_000, 64, 64, die)
        assert large.projected_time_ns > 50 * small.projected_time_ns

    def test_validation(self, die):
        with pytest.raises(ValueError):
            simulate_dense_mm(0, 4, 4, die)


class TestGCNSim:
    @pytest.fixture(scope="class")
    def adj(self):
        return rmat_graph(RMATParams(scale=12, edge_factor=16), seed=3)

    def test_layer_breakdown_positive(self, adj, die):
        b = simulate_gcn_layer(adj, 64, 64, die)
        assert b.spmm > 0 and b.dense > 0 and b.glue > 0

    @pytest.mark.slow
    def test_dense_share_grows_with_k(self, adj, die):
        """Fig 10 validated against simulation, not just models."""
        small = simulate_gcn(
            adj, GCNConfig(in_dim=8, hidden_dim=8, out_dim=8), die
        )
        large = simulate_gcn(
            adj, GCNConfig(in_dim=256, hidden_dim=256, out_dim=256), die
        )
        assert large.fraction("dense") > small.fraction("dense")

    @pytest.mark.slow
    def test_three_layers_accumulate(self, adj, die):
        one = simulate_gcn_layer(adj, 32, 32, die)
        three = simulate_gcn(
            adj, GCNConfig(in_dim=32, hidden_dim=32, out_dim=32), die
        )
        assert three.total == pytest.approx(3 * one.total, rel=0.25)
