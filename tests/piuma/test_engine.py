import pytest

from repro.piuma.config import PIUMAConfig
from repro.piuma.engine import Simulator
from repro.piuma.ops import Compute, DMAOp, Load, PhaseMarker, SequentialAccess, Store


def single_op_thread(op):
    def thread():
        yield op

    return thread()


def run_single(op, **config_overrides):
    cfg = PIUMAConfig(**{"n_cores": 2, "launch_overhead_ns": 0.0, **config_overrides})
    sim = Simulator(cfg)
    sim.spawn(single_op_thread(op), core=0, mtp=0)
    end = sim.run()
    return sim, end


class TestOps:
    def test_compute_occupies_pipeline(self):
        sim, end = run_single(Compute(n_instrs=100))
        assert end == pytest.approx(100 / 2.0)  # 2 GHz

    def test_local_load_pays_dram_latency(self):
        sim, end = run_single(Load(nbytes=64, target_core=0, tag="nnz"))
        cfg = sim.config
        assert end >= cfg.dram_latency_ns
        assert end < cfg.dram_latency_ns + 10.0

    def test_remote_load_pays_network(self):
        local_end = run_single(Load(nbytes=64, target_core=0, tag="nnz"))[1]
        remote_end = run_single(Load(nbytes=64, target_core=1, tag="nnz"))[1]
        assert remote_end > local_end + 20.0  # two intra-die hops

    def test_sequential_access_latency_per_round(self):
        one = run_single(
            SequentialAccess(1, 64, target_core=0, instrs_per_round=1, tag="f")
        )[1]
        four = run_single(
            SequentialAccess(4, 64, target_core=0, instrs_per_round=1, tag="f")
        )[1]
        cfg = PIUMAConfig()
        # Each extra round adds at least a DRAM latency to the chain.
        assert four - one >= 2.9 * cfg.dram_latency_ns

    def test_store_does_not_block(self):
        def thread():
            yield Store(nbytes=10_000, target_core=0, tag="wb")
            yield Compute(n_instrs=2)

        cfg = PIUMAConfig(n_cores=2, launch_overhead_ns=0.0)
        sim = Simulator(cfg)
        sim.spawn(thread(), 0, 0)
        end = sim.run()
        # The write stripes over at most `stripe_lines` slices; the
        # kernel barrier waits for the slowest stripe's drain, which
        # far exceeds the thread's own issue+compute time (~2 ns), so
        # the store was fire-and-forget but still accounted.
        per_stripe = 10_000 / cfg.stripe_lines
        assert end >= per_stripe / cfg.slice_bandwidth_bytes_per_ns
        assert sim.stats["wb"].bytes == 10_000

    def test_dma_op_is_asynchronous(self):
        def thread():
            for _ in range(4):
                yield DMAOp(kind="read", nbytes=4096, target_core=0, tag="r")

        cfg = PIUMAConfig(n_cores=2, launch_overhead_ns=0.0)
        sim = Simulator(cfg)
        sim.spawn(thread(), 0, 0)
        end = sim.run()
        # All four reads were in flight together: total time is near one
        # drain of 16 KB, far below 4 sequential round trips.
        drain = 4 * 4096 / cfg.slice_bandwidth_bytes_per_ns
        assert end < drain + 3 * cfg.dram_latency_ns

    def test_phase_marker_records_setup(self):
        def thread():
            yield Compute(n_instrs=200)
            yield PhaseMarker()
            yield Compute(n_instrs=200)

        cfg = PIUMAConfig(n_cores=1, launch_overhead_ns=0.0)
        sim = Simulator(cfg)
        sim.spawn(thread(), 0, 0)
        sim.run()
        assert sim.setup_end == pytest.approx(100.0)

    def test_unknown_op_rejected(self):
        sim, _ = run_single(Compute(1))
        with pytest.raises(TypeError):
            sim._execute(object(), 0.0, 0, 0)

    def test_spawn_validates_placement(self):
        sim = Simulator(PIUMAConfig(n_cores=2))
        with pytest.raises(ValueError):
            sim.spawn(single_op_thread(Compute(1)), core=5, mtp=0)
        with pytest.raises(ValueError):
            sim.spawn(single_op_thread(Compute(1)), core=0, mtp=9)

    def test_dma_kind_validated(self):
        with pytest.raises(ValueError):
            DMAOp(kind="scan", nbytes=1, target_core=0, tag="x")


class TestAccounting:
    def test_stats_collect_waits_and_bytes(self):
        sim, _ = run_single(Load(nbytes=64, target_core=0, tag="nnz"))
        stats = sim.stats["nnz"]
        assert stats.count == 1
        assert stats.bytes == 64
        assert stats.wait_ns > 0

    def test_bytes_served_accumulates(self):
        sim, _ = run_single(Load(nbytes=64, target_core=0, tag="nnz"))
        assert sim.bytes_served() == 64

    def test_launch_overhead_added(self):
        cfg = PIUMAConfig(n_cores=1, launch_overhead_ns=500.0)
        sim = Simulator(cfg)
        sim.spawn(single_op_thread(Compute(2)), 0, 0)
        assert sim.run() >= 500.0

    def test_empty_simulation(self):
        sim = Simulator(PIUMAConfig(n_cores=1, launch_overhead_ns=100.0))
        assert sim.run() == 100.0
        assert sim.achieved_bandwidth() == 0.0

    def test_memory_utilization_bounded(self):
        sim, _ = run_single(Load(nbytes=64, target_core=0, tag="nnz"))
        assert 0.0 <= sim.memory_utilization() <= 1.0
