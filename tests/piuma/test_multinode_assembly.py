"""The multi-node assembly layer: halo fabric, estimate, strong scaling.

Covers the bulk-synchronous assembly arithmetic (slowest shard +
bounded halo exchange), the conservation of the summed shard counters
through :func:`assemble_multinode`, and the ``strong_scaling`` study
the ``repro multinode`` command and the scaling benchmark sit on.
"""

import pytest

from repro.piuma.config import PIUMAConfig
from repro.piuma.multinode import (
    HaloFabric,
    assemble_multinode,
    run_multinode,
    scaling_figure,
    strong_scaling,
)
from repro.runtime.shard import conserved_counters, shard_tasks

SWEEP = {"workers": 1}  # inline, no process pool in unit tests


def _records(n_shards, strategy="block"):
    return [
        task.run()
        for task in shard_tasks("arxiv", 32, n_shards, strategy=strategy,
                                max_vertices=1024, seed=3)
    ]


class TestHaloFabric:
    def test_exchange_is_full_duplex_plus_latency(self):
        fabric = HaloFabric(link_bandwidth_gbps=2.0, latency_ns=100.0)
        # max(send, recv) on the wire, one latency per active peer.
        assert fabric.exchange_ns(800.0, 200.0, peers=3) == 400.0 + 300.0
        assert fabric.exchange_ns(200.0, 800.0, peers=0) == 400.0

    def test_from_config_reads_the_inter_node_tier(self):
        config = PIUMAConfig()
        fabric = HaloFabric.from_config(config)
        assert fabric.link_bandwidth_gbps == config.network_bandwidth_gbps
        assert fabric.latency_ns == config.inter_node_latency_ns
        assert fabric.feature_bytes == config.feature_bytes


class TestAssembleMultinode:
    def test_rejects_empty_and_short_record_lists(self):
        fabric = HaloFabric(1.0, 0.0)
        with pytest.raises(ValueError):
            assemble_multinode([], dataset="x", strategy="block",
                               embedding_dim=8, fabric=fabric)
        records = _records(2)
        with pytest.raises(ValueError, match="shard records"):
            assemble_multinode(records[:1], dataset="x", strategy="block",
                               embedding_dim=8, fabric=fabric)

    def test_single_node_has_no_communication(self):
        estimate = assemble_multinode(
            _records(1), dataset="arxiv", strategy="block",
            embedding_dim=32, fabric=HaloFabric(1.0, 100.0),
        )
        assert estimate.comm_ns == 0.0
        assert estimate.comm_share == 0.0
        assert estimate.cut_fraction == 0.0
        assert estimate.time_ns == estimate.compute_ns

    @pytest.mark.parametrize("strategy", ["block", "degree"])
    def test_conserves_monolithic_totals(self, strategy):
        records = _records(4, strategy)
        estimate = assemble_multinode(
            records, dataset="arxiv", strategy=strategy,
            embedding_dim=32, fabric=HaloFabric(1.0, 0.0),
        )
        whole = conserved_counters(
            estimate.conserved["rows"], estimate.total_edges, 32,
            PIUMAConfig(),
        )
        assert estimate.conserved == whole
        assert sum(estimate.shard_edges) == estimate.total_edges

    def test_compute_is_the_straggler(self):
        records = _records(4)
        estimate = assemble_multinode(
            records, dataset="arxiv", strategy="block",
            embedding_dim=32, fabric=HaloFabric(1.0, 0.0),
        )
        assert estimate.compute_ns == max(estimate.per_shard_ns)
        assert estimate.balance >= 1.0

    def test_halo_volume_is_symmetric_and_bounded(self):
        records = _records(4)
        estimate = assemble_multinode(
            records, dataset="arxiv", strategy="block",
            embedding_dim=32, fabric=HaloFabric(1.0, 0.0),
        )
        # Every byte sent is a byte received, and the deduplicated
        # ghost volume can never exceed one feature row per cut edge.
        assert sum(estimate.send_bytes) == sum(estimate.recv_bytes)
        assert estimate.halo_bytes == sum(estimate.send_bytes)
        assert 0 < estimate.halo_bytes <= estimate.cut_edges * 32 * 4

    def test_scale_factor_projects_linearly(self):
        estimate = assemble_multinode(
            _records(2), dataset="arxiv", strategy="block",
            embedding_dim=32, fabric=HaloFabric(1.0, 0.0), scale_factor=10.0,
        )
        assert estimate.full_time_ns == pytest.approx(estimate.time_ns * 10)
        row = estimate.row()
        assert row["full_time_ns"] == pytest.approx(estimate.full_time_ns)
        assert row["n_nodes"] == 2


class TestRunMultinode:
    def test_end_to_end_point(self):
        estimate, report = run_multinode(
            "arxiv", 2, max_vertices=1024, seed=3, embedding_dim=32,
            sweep_kwargs=SWEEP,
        )
        assert estimate.n_nodes == 2
        assert estimate.comm_ns > 0
        assert not report.failures
        # The down-scaled run projects to the full dataset edge count.
        assert estimate.scale_factor > 1.0

    def test_checkpoint_discarded_on_success(self, tmp_path):
        _estimate, _report = run_multinode(
            "arxiv", 2, max_vertices=1024, seed=3, embedding_dim=32,
            sweep_kwargs=SWEEP, checkpoint_dir=tmp_path,
        )
        assert not list(tmp_path.glob("*.jsonl"))


class TestStrongScaling:
    @pytest.fixture(scope="class")
    def study(self):
        return strong_scaling(
            "arxiv", nodes=(1, 2, 4), strategies=("block", "degree"),
            embedding_dim=32, max_vertices=1024, seed=3,
            sweep_kwargs=SWEEP,
        )

    def test_one_row_per_strategy_node_pair(self, study):
        assert len(study["rows"]) == 6
        assert set(study["estimates"]) == {
            (s, n) for s in ("block", "degree") for n in (1, 2, 4)
        }

    def test_speedup_normalized_at_smallest_node_count(self, study):
        for strategy in ("block", "degree"):
            rows = [r for r in study["rows"] if r["strategy"] == strategy]
            assert rows[0]["n_nodes"] == 1
            assert rows[0]["speedup"] == pytest.approx(1.0)
            assert all(0 < r["efficiency"] <= r["speedup"] for r in rows)

    def test_rows_carry_comparison_columns(self, study):
        for row in study["rows"]:
            assert row["dgas_ns"] > 0
            assert row["dgas_ratio"] > 0
            assert "balance" in row and "cut_fraction" in row

    def test_degree_balances_better_on_skewed_graph(self, study):
        by = {(r["strategy"], r["n_nodes"]): r for r in study["rows"]}
        assert by[("degree", 4)]["balance"] <= by[("block", 4)]["balance"]

    def test_scaling_figure_mentions_every_strategy(self, study):
        figure = scaling_figure(study["rows"], (1, 2, 4))
        assert "speedup[block]" in figure
        assert "speedup[degree]" in figure
        assert "ideal" in figure
