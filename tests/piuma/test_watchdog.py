"""Simulator watchdogs: divergence ceilings instead of infinite loops.

A non-terminating simulation must raise ``SimulationDiverged`` within
the configured ceiling — never hang a sweep worker forever.
"""

import pytest

from repro.graphs.datasets import get_dataset
from repro.piuma import PIUMAConfig, Simulator, simulate_spmm
from repro.piuma.ops import Compute
from repro.runtime.errors import SimulationDiverged


@pytest.fixture(scope="module")
def adj():
    return get_dataset("products").materialize(max_vertices=512, seed=0)


class TestCeilings:
    def test_max_events_trips(self, adj):
        config = PIUMAConfig(n_cores=1, max_events=64)
        with pytest.raises(SimulationDiverged) as err:
            simulate_spmm(adj, 8, config, window_edges=512)
        assert err.value.cause == "max_events"

    def test_max_sim_ns_trips(self, adj):
        config = PIUMAConfig(n_cores=1, max_sim_ns=10.0)
        with pytest.raises(SimulationDiverged) as err:
            simulate_spmm(adj, 8, config, window_edges=512)
        assert err.value.cause == "max_sim_ns"

    def test_stall_detector_catches_zero_cost_loop(self):
        # A thread yielding free ops never advances simulated time: the
        # classic divergence no event/time ceiling short of infinity
        # would catch quickly.
        config = PIUMAConfig(n_cores=1, stall_events=200)
        simulator = Simulator(config)

        def spinner():
            while True:
                yield Compute(n_instrs=0, tag="spin")

        simulator.spawn(spinner(), 0, 0)
        with pytest.raises(SimulationDiverged) as err:
            simulator.run()
        assert err.value.cause == "stall"

    def test_zero_disables_ceilings(self, adj):
        config = PIUMAConfig(n_cores=1, max_events=0, max_sim_ns=0.0,
                             stall_events=0)
        result = simulate_spmm(adj, 8, config, window_edges=256)
        assert result.sim_time_ns > 0

    def test_defaults_do_not_fire_on_healthy_runs(self, adj):
        result = simulate_spmm(adj, 8, PIUMAConfig(n_cores=1),
                               window_edges=256)
        assert result.sim_time_ns > 0


class TestValidation:
    @pytest.mark.parametrize("field", ["max_events", "stall_events"])
    def test_negative_event_ceilings_rejected(self, field):
        with pytest.raises(ValueError):
            PIUMAConfig(**{field: -1})

    def test_negative_time_ceiling_rejected(self):
        with pytest.raises(ValueError):
            PIUMAConfig(max_sim_ns=-5.0)

    def test_divergence_is_structured(self, adj):
        config = PIUMAConfig(n_cores=1, max_events=64)
        with pytest.raises(SimulationDiverged) as err:
            simulate_spmm(adj, 8, config, window_edges=512)
        payload = err.value.payload()
        assert payload["kind"] == "diverged"
        assert payload["cause"] == "max_events"
