"""White-box tests of the kernel thread generators.

The DES results depend on the exact op sequences the kernels emit; these
tests pin them down on a hand-built graph so kernel refactors cannot
silently change the modeled hardware behavior.
"""

import numpy as np
import pytest

from repro.piuma.config import PIUMAConfig
from repro.piuma.kernels import ThreadWork
from repro.piuma.ops import (
    AtomicUpdate,
    Compute,
    DMAOp,
    Load,
    PhaseMarker,
    SequentialAccess,
)
from repro.piuma.spmm_dma import dma_thread
from repro.piuma.spmm_loop import loop_unrolled_thread
from repro.piuma.spmm_vertex import vertex_parallel_thread


def make_work(cols, rows, start_edge=0):
    return ThreadWork(
        core=0,
        mtp=0,
        cols=np.asarray(cols, dtype=np.int64),
        rows=np.asarray(rows, dtype=np.int64),
        start_edge=start_edge,
    )


@pytest.fixture
def config():
    return PIUMAConfig(n_cores=2)


def ops_of(generator):
    return list(generator)


class TestDMAKernelSequence:
    def test_two_rows_three_edges(self, config):
        """Rows [5, 5, 9]: one NNZ group load, per edge init+read, one
        atomic write at the row boundary plus one final."""
        work = make_work(cols=[1, 2, 3], rows=[5, 5, 9])
        ops = ops_of(dma_thread(work, 16, config))
        kinds = [type(op).__name__ for op in ops]
        assert kinds[0] == "SequentialAccess"  # binary search
        assert kinds[1] == "PhaseMarker"
        loads = [op for op in ops if isinstance(op, Load)]
        assert len(loads) == 1  # 3 edges fit one group of 8
        assert loads[0].tag == "nnz"
        assert loads[0].nbytes == 3 * 8  # 3 edges x (col + value)
        reads = [op for op in ops
                 if isinstance(op, DMAOp) and op.kind == "read"]
        assert len(reads) == 3
        assert all(op.nbytes == 16 * 4 for op in reads)
        atomics = [op for op in ops if isinstance(op, AtomicUpdate)]
        assert len(atomics) == 2  # row 5 flushed at boundary, row 9 at end

    def test_group_boundary(self, config):
        """Nine edges need two NNZ group loads (group size 8)."""
        work = make_work(cols=list(range(9)), rows=[0] * 9)
        ops = ops_of(dma_thread(work, 8, config))
        loads = [op for op in ops if isinstance(op, Load)]
        assert len(loads) == 2
        assert loads[0].nbytes == 8 * 8
        assert loads[1].nbytes == 1 * 8

    def test_empty_work(self, config):
        work = make_work(cols=[], rows=[])
        ops = ops_of(dma_thread(work, 8, config))
        # Binary search + marker only; nothing else.
        assert len(ops) == 2


class TestLoopKernelSequence:
    def test_feature_rounds_scale_with_k(self, config):
        work = make_work(cols=[1], rows=[0])
        for k, expected_rounds in ((8, 1), (64, 8), (256, 32)):
            ops = ops_of(loop_unrolled_thread(work, k, config))
            feature = [op for op in ops
                       if isinstance(op, SequentialAccess)
                       and op.tag == "feature"]
            assert len(feature) == 1
            assert feature[0].n_rounds == expected_rounds, k

    def test_small_k_single_partial_round(self, config):
        work = make_work(cols=[1], rows=[0])
        ops = ops_of(loop_unrolled_thread(work, 4, config))
        feature = next(op for op in ops
                       if isinstance(op, SequentialAccess)
                       and op.tag == "feature")
        assert feature.n_rounds == 1
        assert feature.bytes_per_round == 4 * 4

    def test_write_back_is_atomic(self, config):
        work = make_work(cols=[1, 2], rows=[0, 3])
        ops = ops_of(loop_unrolled_thread(work, 8, config))
        atomics = [op for op in ops if isinstance(op, AtomicUpdate)]
        assert len(atomics) == 2
        assert all(op.tag == "atomic_write" for op in atomics)


class TestVertexKernelSequence:
    def test_no_binary_search_no_atomics(self, config):
        work = make_work(cols=[1, 2, 3], rows=[5, 5, 9])
        ops = ops_of(vertex_parallel_thread(work, 8, config))
        assert isinstance(ops[0], PhaseMarker)
        assert not any(isinstance(op, AtomicUpdate) for op in ops)
        assert not any(
            isinstance(op, SequentialAccess) for op in ops
        )
        writes = [op for op in ops
                  if isinstance(op, DMAOp) and op.kind == "write"]
        assert len(writes) == 2  # plain DMA writes, one per owned row

    def test_reads_match_edges(self, config):
        work = make_work(cols=[4, 5, 6, 7], rows=[0, 0, 1, 1])
        ops = ops_of(vertex_parallel_thread(work, 32, config))
        reads = [op for op in ops
                 if isinstance(op, DMAOp) and op.kind == "read"]
        assert len(reads) == 4
        assert all(op.nbytes == 32 * 4 for op in reads)


class TestByteAccounting:
    @pytest.mark.parametrize("factory", [dma_thread, vertex_parallel_thread])
    def test_read_bytes_equal_model(self, config, factory):
        """Every kernel's per-edge DMA read volume equals Eq.2 exactly."""
        k = 64
        edges = 20
        work = make_work(cols=list(range(edges)), rows=[0] * edges)
        ops = ops_of(factory(work, k, config))
        read_bytes = sum(
            op.nbytes for op in ops
            if isinstance(op, DMAOp) and op.kind == "read"
        )
        assert read_bytes == k * edges * config.feature_bytes
