"""Property-based tests on the simulator's resource primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.piuma.config import PIUMAConfig
from repro.piuma.engine import Simulator
from repro.piuma.ops import Compute, DMAOp, Load, SequentialAccess, Store
from repro.piuma.resources import DRAMSlice, FluidResource, Timeline


@st.composite
def allocation_requests(draw, max_requests=40):
    n = draw(st.integers(1, max_requests))
    return [
        (
            draw(st.floats(0.0, 1000.0, allow_nan=False)),
            draw(st.floats(0.0, 50.0, allow_nan=False)),
        )
        for _ in range(n)
    ]


@given(allocation_requests())
@settings(max_examples=80, deadline=None)
def test_timeline_allocations_never_overlap(requests):
    timeline = Timeline()
    granted = [timeline.allocate(arrival, duration)
               for arrival, duration in requests]
    spans = sorted((s, e) for s, e in granted if e > s)
    for (_s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert s2 >= e1 - 1e-6


@given(allocation_requests())
@settings(max_examples=80, deadline=None)
def test_timeline_conserves_busy_time(requests):
    timeline = Timeline()
    total = 0.0
    for arrival, duration in requests:
        timeline.allocate(arrival, duration)
        total += duration
    assert timeline.busy_time == pytest.approx(total, rel=1e-9, abs=1e-6)


@given(allocation_requests())
@settings(max_examples=80, deadline=None)
def test_timeline_never_starts_before_arrival(requests):
    timeline = Timeline()
    for arrival, duration in requests:
        start, end = timeline.allocate(arrival, duration)
        assert start >= arrival - 1e-12
        assert end == pytest.approx(start + duration)


@given(
    st.lists(st.floats(0.1, 100.0, allow_nan=False), min_size=1, max_size=30)
)
@settings(max_examples=60, deadline=None)
def test_fluid_resource_fifo_order(amounts):
    resource = FluidResource(rate=2.0)
    previous_end = 0.0
    for amount in amounts:
        start, end = resource.reserve(0.0, amount)
        assert start == pytest.approx(previous_end)
        previous_end = end


@given(
    st.lists(
        st.tuples(
            st.floats(0.0, 500.0, allow_nan=False),  # arrival
            st.integers(1, 4096),                     # bytes
            st.booleans(),                            # priority
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_dram_slice_throughput_never_exceeds_rate(requests):
    slice_ = DRAMSlice(bandwidth_bytes_per_ns=4.0, latency_ns=10.0)
    latest = 0.0
    for arrival, nbytes, priority in requests:
        done = slice_.request(arrival, nbytes, priority=priority)
        latest = max(latest, done)
    transfer_window = latest - 10.0  # completion includes latency once
    # Slack: one maximal bulk request may straddle the window end, and
    # the priority lane may briefly double-book (its capacity charge is
    # pushed onto the bulk timeline rather than the instantaneous rate).
    assert slice_.bytes_served <= 4.0 * transfer_window + 2 * 4096 + 1e-6


@st.composite
def op_sequences(draw, n_cores=2):
    ops = []
    for _ in range(draw(st.integers(1, 12))):
        kind = draw(st.integers(0, 4))
        target = draw(st.integers(0, n_cores - 1))
        if kind == 0:
            ops.append(Compute(draw(st.integers(1, 50))))
        elif kind == 1:
            ops.append(Load(draw(st.integers(1, 256)), target, "nnz"))
        elif kind == 2:
            ops.append(
                SequentialAccess(
                    draw(st.integers(1, 5)), draw(st.integers(1, 64)),
                    target, 4, "feature",
                )
            )
        elif kind == 3:
            ops.append(Store(draw(st.integers(1, 512)), target, "wb"))
        else:
            ops.append(
                DMAOp("read", draw(st.integers(0, 1024)), target, "dma_read")
            )
    return ops


@given(st.lists(op_sequences(), min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_engine_always_terminates_and_accounts(thread_programs):
    config = PIUMAConfig(n_cores=2, launch_overhead_ns=0.0)
    simulator = Simulator(config)

    def thread(ops):
        for op in ops:
            yield op

    total_bytes = 0.0
    for i, program in enumerate(thread_programs):
        simulator.spawn(thread(list(program)), core=i % 2, mtp=i % 4)
        for op in program:
            if isinstance(op, (Load, Store)):
                total_bytes += op.nbytes
            elif isinstance(op, SequentialAccess):
                total_bytes += op.n_rounds * op.bytes_per_round
            elif isinstance(op, DMAOp):
                total_bytes += op.nbytes
    end = simulator.run()
    assert np.isfinite(end) and end >= 0.0
    assert simulator.bytes_served() == pytest.approx(total_bytes)
    # Time must be at least the busiest slice's pure transfer time.
    min_time = max(s.busy_time for s in simulator.slices)
    assert end >= min_time - 1e-6
