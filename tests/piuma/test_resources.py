import pytest

from repro.piuma.resources import DRAMSlice, FluidResource, Timeline


class TestFluidResource:
    def test_service_time(self):
        r = FluidResource(rate=2.0)
        start, end = r.reserve(0.0, 10.0)
        assert start == 0.0
        assert end == 5.0

    def test_fifo_queueing(self):
        r = FluidResource(rate=1.0)
        r.reserve(0.0, 10.0)
        start, end = r.reserve(3.0, 5.0)
        assert start == 10.0
        assert end == 15.0

    def test_idle_gap_before_late_arrival(self):
        r = FluidResource(rate=1.0)
        r.reserve(0.0, 2.0)
        start, _ = r.reserve(100.0, 1.0)
        assert start == 100.0

    def test_extra_time(self):
        r = FluidResource(rate=1.0)
        _, end = r.reserve(0.0, 4.0, extra_time=2.0)
        assert end == 6.0

    def test_utilization(self):
        r = FluidResource(rate=1.0)
        r.reserve(0.0, 5.0)
        assert r.utilization(10.0) == 0.5
        assert r.utilization(0.0) == 0.0

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            FluidResource(rate=0.0)

    def test_rejects_negative_amount(self):
        with pytest.raises(ValueError):
            FluidResource(rate=1.0).reserve(0.0, -1.0)

    def test_stats_accumulate(self):
        r = FluidResource(rate=2.0)
        r.reserve(0.0, 4.0)
        r.reserve(0.0, 4.0)
        assert r.units_served == 8.0
        assert r.requests == 2


class TestTimeline:
    def test_empty_allocation_starts_at_arrival(self):
        t = Timeline()
        assert t.allocate(5.0, 3.0) == (5.0, 8.0)

    def test_backfills_gap_before_future_block(self):
        """The property FluidResource lacks: an early request fits into
        the idle gap before a future-stamped reservation."""
        t = Timeline()
        t.allocate(100.0, 10.0)
        start, end = t.allocate(0.0, 5.0)
        assert (start, end) == (0.0, 5.0)

    def test_queues_when_gap_too_small(self):
        t = Timeline()
        t.allocate(0.0, 10.0)
        start, _ = t.allocate(2.0, 5.0)
        assert start == 10.0

    def test_skips_too_small_gap(self):
        t = Timeline()
        t.allocate(0.0, 4.0)
        t.allocate(6.0, 4.0)  # gap [4, 6) of width 2
        start, _ = t.allocate(0.0, 3.0)
        assert start == 10.0

    def test_uses_exact_fit_gap(self):
        t = Timeline()
        t.allocate(0.0, 4.0)
        t.allocate(6.0, 4.0)
        start, end = t.allocate(0.0, 2.0)
        assert (start, end) == (4.0, 6.0)

    def test_merging_keeps_structure_small(self):
        t = Timeline()
        for i in range(100):
            t.allocate(0.0, 1.0)
        assert len(t._intervals) == 1
        assert t.busy_time == pytest.approx(100.0)

    def test_busy_time_counts_all(self):
        t = Timeline()
        t.allocate(0.0, 3.0)
        t.allocate(10.0, 2.0)
        assert t.busy_time == pytest.approx(5.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Timeline().allocate(0.0, -1.0)


class TestDRAMSlice:
    def test_completion_includes_latency(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=2.0, latency_ns=45.0)
        assert s.request(0.0, 10.0) == pytest.approx(50.0)

    def test_saturation_queueing(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=1.0, latency_ns=0.0)
        first = s.request(0.0, 100.0)
        second = s.request(0.0, 100.0)
        assert first == pytest.approx(100.0)
        assert second == pytest.approx(200.0)

    def test_priority_jumps_bulk_queue(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=1.0, latency_ns=10.0)
        s.request(0.0, 1000.0)  # bulk backlog until t=1000
        done = s.request(0.0, 8.0, priority=True)
        assert done == pytest.approx(8.0 + 10.0)

    def test_priority_still_consumes_capacity(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=1.0, latency_ns=0.0)
        s.request(0.0, 8.0, priority=True)
        # Bulk arriving now must queue behind the stolen bandwidth.
        assert s.request(0.0, 4.0) >= 8.0
        assert s.busy_time == pytest.approx(12.0)

    def test_priority_requests_serialize_among_themselves(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=1.0, latency_ns=0.0)
        a = s.request(0.0, 5.0, priority=True)
        b = s.request(0.0, 5.0, priority=True)
        assert b == pytest.approx(a + 5.0)

    def test_bytes_served(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=1.0, latency_ns=0.0)
        s.request(0.0, 7.0)
        s.request(0.0, 3.0, priority=True)
        assert s.bytes_served == 10.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DRAMSlice(0.0, 10.0)
        with pytest.raises(ValueError):
            DRAMSlice(1.0, -1.0)
        with pytest.raises(ValueError):
            DRAMSlice(1.0, 0.0).request(0.0, -5.0)
