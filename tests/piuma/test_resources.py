import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.piuma.resources import DRAMSlice, FluidResource, Timeline


class TestFluidResource:
    def test_service_time(self):
        r = FluidResource(rate=2.0)
        start, end = r.reserve(0.0, 10.0)
        assert start == 0.0
        assert end == 5.0

    def test_fifo_queueing(self):
        r = FluidResource(rate=1.0)
        r.reserve(0.0, 10.0)
        start, end = r.reserve(3.0, 5.0)
        assert start == 10.0
        assert end == 15.0

    def test_idle_gap_before_late_arrival(self):
        r = FluidResource(rate=1.0)
        r.reserve(0.0, 2.0)
        start, _ = r.reserve(100.0, 1.0)
        assert start == 100.0

    def test_extra_time(self):
        r = FluidResource(rate=1.0)
        _, end = r.reserve(0.0, 4.0, extra_time=2.0)
        assert end == 6.0

    def test_utilization(self):
        r = FluidResource(rate=1.0)
        r.reserve(0.0, 5.0)
        assert r.utilization(10.0) == 0.5
        assert r.utilization(0.0) == 0.0

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            FluidResource(rate=0.0)

    def test_rejects_negative_amount(self):
        with pytest.raises(ValueError):
            FluidResource(rate=1.0).reserve(0.0, -1.0)

    def test_stats_accumulate(self):
        r = FluidResource(rate=2.0)
        r.reserve(0.0, 4.0)
        r.reserve(0.0, 4.0)
        assert r.units_served == 8.0
        assert r.requests == 2


class TestTimeline:
    def test_empty_allocation_starts_at_arrival(self):
        t = Timeline()
        assert t.allocate(5.0, 3.0) == (5.0, 8.0)

    def test_backfills_gap_before_future_block(self):
        """The property FluidResource lacks: an early request fits into
        the idle gap before a future-stamped reservation."""
        t = Timeline()
        t.allocate(100.0, 10.0)
        start, end = t.allocate(0.0, 5.0)
        assert (start, end) == (0.0, 5.0)

    def test_queues_when_gap_too_small(self):
        t = Timeline()
        t.allocate(0.0, 10.0)
        start, _ = t.allocate(2.0, 5.0)
        assert start == 10.0

    def test_skips_too_small_gap(self):
        t = Timeline()
        t.allocate(0.0, 4.0)
        t.allocate(6.0, 4.0)  # gap [4, 6) of width 2
        start, _ = t.allocate(0.0, 3.0)
        assert start == 10.0

    def test_uses_exact_fit_gap(self):
        t = Timeline()
        t.allocate(0.0, 4.0)
        t.allocate(6.0, 4.0)
        start, end = t.allocate(0.0, 2.0)
        assert (start, end) == (4.0, 6.0)

    def test_merging_keeps_structure_small(self):
        t = Timeline()
        for i in range(100):
            t.allocate(0.0, 1.0)
        assert len(t._intervals) == 1
        assert t.busy_time == pytest.approx(100.0)

    def test_busy_time_counts_all(self):
        t = Timeline()
        t.allocate(0.0, 3.0)
        t.allocate(10.0, 2.0)
        assert t.busy_time == pytest.approx(5.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Timeline().allocate(0.0, -1.0)

    def test_zero_duration_on_empty_timeline(self):
        t = Timeline()
        assert t.allocate(5.0, 0.0) == (5.0, 5.0)
        assert t.busy_time == 0.0

    def test_zero_duration_inside_busy_interval_defers_to_its_end(self):
        t = Timeline()
        t.allocate(0.0, 10.0)
        assert t.allocate(3.0, 0.0) == (10.0, 10.0)
        assert t.busy_time == pytest.approx(10.0)

    def test_zero_duration_keeps_intervals_disjoint(self):
        t = Timeline()
        t.allocate(0.0, 4.0)
        t.allocate(10.0, 4.0)
        t.allocate(6.0, 0.0)  # zero-width marker in the gap
        _assert_disjoint_sorted(t)

    def test_future_then_earlier_lands_in_gap(self):
        """A future-stamped descriptor must not block an
        earlier-stamped request that fits in the idle gap before it."""
        t = Timeline()
        t.allocate(100.0, 10.0)
        start, end = t.allocate(20.0, 30.0)
        assert (start, end) == (20.0, 50.0)
        # A gap-straddling request cannot overlap the future block:
        # [95, 105) would collide with [100, 110), so it queues.
        start, _ = t.allocate(95.0, 10.0)
        assert start == 110.0
        _assert_disjoint_sorted(t)

    def test_exact_fit_gap_merges_with_future_block(self):
        t = Timeline()
        t.allocate(100.0, 10.0)
        start, end = t.allocate(95.0, 5.0)
        assert (start, end) == (95.0, 100.0)
        assert t._intervals == [(95.0, 110.0)]

    def test_merge_tolerance_collapses_adjacent_intervals(self):
        """Gaps below the 1e-9 tolerance are absorbed, so float noise
        cannot fragment the structure under saturation."""
        t = Timeline()
        t.allocate(0.0, 1.0)
        t.allocate(1.0 + 5e-10, 1.0)  # sub-tolerance gap
        assert len(t._intervals) == 1
        t.allocate(2.0 + 1e-6, 1.0)   # above tolerance: stays separate
        assert len(t._intervals) == 2
        _assert_disjoint_sorted(t)

    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 1000.0, allow_nan=False),  # arrival
                st.floats(0.0, 50.0, allow_nan=False),    # duration (0 ok)
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_intervals_stay_disjoint_and_sorted(self, requests):
        t = Timeline()
        for arrival, duration in requests:
            start, end = t.allocate(arrival, duration)
            assert start >= arrival
            assert end == pytest.approx(start + duration)
            _assert_disjoint_sorted(t)


def _assert_disjoint_sorted(timeline):
    intervals = timeline._intervals
    for start, end in intervals:
        assert end >= start
    for (_s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
        assert s2 > e1, "intervals out of order or overlapping"


class TestDRAMSlice:
    def test_completion_includes_latency(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=2.0, latency_ns=45.0)
        assert s.request(0.0, 10.0) == pytest.approx(50.0)

    def test_saturation_queueing(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=1.0, latency_ns=0.0)
        first = s.request(0.0, 100.0)
        second = s.request(0.0, 100.0)
        assert first == pytest.approx(100.0)
        assert second == pytest.approx(200.0)

    def test_priority_jumps_bulk_queue(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=1.0, latency_ns=10.0)
        s.request(0.0, 1000.0)  # bulk backlog until t=1000
        done = s.request(0.0, 8.0, priority=True)
        assert done == pytest.approx(8.0 + 10.0)

    def test_priority_still_consumes_capacity(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=1.0, latency_ns=0.0)
        s.request(0.0, 8.0, priority=True)
        # Bulk arriving now must queue behind the stolen bandwidth.
        assert s.request(0.0, 4.0) >= 8.0
        assert s.busy_time == pytest.approx(12.0)

    def test_priority_requests_serialize_among_themselves(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=1.0, latency_ns=0.0)
        a = s.request(0.0, 5.0, priority=True)
        b = s.request(0.0, 5.0, priority=True)
        assert b == pytest.approx(a + 5.0)

    def test_bytes_served(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=1.0, latency_ns=0.0)
        s.request(0.0, 7.0)
        s.request(0.0, 3.0, priority=True)
        assert s.bytes_served == 10.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DRAMSlice(0.0, 10.0)
        with pytest.raises(ValueError):
            DRAMSlice(1.0, -1.0)
        with pytest.raises(ValueError):
            DRAMSlice(1.0, 0.0).request(0.0, -5.0)

    def test_priority_busy_time_accumulates(self):
        """Regression: ``_priority_busy`` was initialized but never
        updated, leaving demand-read service unaccounted."""
        s = DRAMSlice(bandwidth_bytes_per_ns=2.0, latency_ns=0.0)
        s.request(0.0, 8.0, priority=True)
        s.request(0.0, 6.0, priority=True)
        assert s.priority_busy_time == pytest.approx(7.0)  # 4 + 3 ns

    def test_bulk_only_leaves_priority_account_empty(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=1.0, latency_ns=0.0)
        s.request(0.0, 100.0)
        assert s.priority_busy_time == 0.0
        assert s.priority_utilization(100.0) == 0.0

    def test_interleaved_priority_and_bulk_accounting(self):
        """Pin busy_time/utilization when priority and bulk interleave:
        priority service is charged to the shared timeline (capacity)
        *and* sub-accounted in priority_busy_time."""
        s = DRAMSlice(bandwidth_bytes_per_ns=1.0, latency_ns=0.0)
        s.request(0.0, 10.0)                  # bulk [0, 10)
        s.request(2.0, 4.0, priority=True)    # steals 4 ns of capacity
        s.request(5.0, 6.0)                   # bulk, queued
        assert s.busy_time == pytest.approx(20.0)
        assert s.priority_busy_time == pytest.approx(4.0)
        assert s.utilization(20.0) == pytest.approx(1.0)
        assert s.priority_utilization(20.0) == pytest.approx(0.2)
        # The sub-account never exceeds the total.
        assert s.priority_busy_time <= s.busy_time + 1e-12

    def test_priority_utilization_horizon_guard(self):
        s = DRAMSlice(bandwidth_bytes_per_ns=1.0, latency_ns=0.0)
        s.request(0.0, 5.0, priority=True)
        assert s.priority_utilization(0.0) == 0.0
        assert s.priority_utilization(2.0) == 1.0  # clamped
