"""Multi-node DGAS scaling (Key Takeaway 1 of Section V).

"As the number of nodes in a PIUMA system increases, the DGAS memory
capacity and effective bandwidth increase proportionally" — validated
in the DES with small nodes so the simulation stays affordable.
"""

import pytest

from repro.graphs.rmat import RMATParams, rmat_graph
from repro.piuma import PIUMAConfig, simulate_spmm, spmm_model
from repro.piuma.network import Network


@pytest.fixture(scope="module")
def adj():
    return rmat_graph(RMATParams(scale=13, edge_factor=16), seed=2)


class TestTopology:
    def test_node_counting(self):
        cfg = PIUMAConfig.multinode(n_nodes=2, dies_per_node=1)
        assert cfg.n_cores == 16
        assert cfg.n_nodes == 2
        assert cfg.cores_per_node == 8

    def test_default_single_node(self):
        assert PIUMAConfig().n_nodes == 1

    def test_latency_tiers_ordered(self):
        cfg = PIUMAConfig.multinode(n_nodes=2, dies_per_node=2)
        net = Network(cfg)
        intra_die = net.latency(0, 1)
        inter_die = net.latency(0, 8)
        inter_node = net.latency(0, 16)
        assert intra_die < inter_die < inter_node

    def test_single_node_never_pays_node_tier(self):
        cfg = PIUMAConfig(n_cores=32)  # 4 dies, one (default 32-die) node
        net = Network(cfg)
        assert net.latency(0, 31) == cfg.inter_die_latency_ns


@pytest.mark.slow
class TestDGASScaling:
    def test_two_nodes_scale_bandwidth(self, adj):
        """2 nodes ~ 2x the aggregate SpMM throughput of 1 node."""
        one = simulate_spmm(
            adj, 64, PIUMAConfig.multinode(1), "dma"
        ).gflops
        two = simulate_spmm(
            adj, 64, PIUMAConfig.multinode(2), "dma"
        ).gflops
        assert two > 1.5 * one

    def test_multinode_stays_latency_tolerant(self, adj):
        """The DMA kernel's efficiency survives the node latency tier
        (the whole point of the DGAS + multithreading design)."""
        cfg = PIUMAConfig.multinode(2)
        result = simulate_spmm(adj, 64, cfg, "dma")
        model = spmm_model(adj.n_rows, adj.nnz, 64, cfg)
        assert result.efficiency_vs(model.gflops) > 0.7

    def test_loop_kernel_suffers_more_across_nodes(self, adj):
        """The scalar kernel's latency sensitivity worsens with the
        400 ns node tier on its critical path."""
        cfg = PIUMAConfig.multinode(2)
        loop = simulate_spmm(adj, 64, cfg, "loop")
        dma = simulate_spmm(adj, 64, cfg, "dma")
        assert dma.gflops > 2 * loop.gflops
