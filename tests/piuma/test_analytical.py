import pytest

from repro.piuma.analytical import element_bytes, spmm_model
from repro.piuma.config import PIUMAConfig
from repro.piuma.densemm import dense_mm_time, peak_mac_gflops
from repro.piuma.gcn import gcn_breakdown, layer_breakdown
from repro.workloads.gcn_workload import workload_for


class TestAnalyticalModel:
    def test_element_sizes_from_config(self):
        cfg = PIUMAConfig()
        sizes = element_bytes(cfg)
        assert sizes == {"row": 4, "col": 4, "nnz": 4, "feature": 4}

    def test_equation5_hand_computed(self):
        cfg = PIUMAConfig(n_cores=1)  # 25.6 GB/s
        m = spmm_model(10, 30, 8, cfg)
        reads = (11 * 4 + 30 * 8) + 8 * 30 * 4
        writes = 8 * 10 * 4
        assert m.time_ns == pytest.approx(
            reads / 25.6 + writes / 25.6
        )
        assert m.traffic.flops == 2 * 30 * 8

    def test_bandwidth_overrides(self):
        cfg = PIUMAConfig(n_cores=1)
        fast = spmm_model(100, 1000, 64, cfg, read_bandwidth=1000.0,
                          write_bandwidth=1000.0)
        slow = spmm_model(100, 1000, 64, cfg)
        assert fast.time_ns < slow.time_ns

    def test_gflops_scale_with_cores(self):
        one = spmm_model(1000, 16000, 256, PIUMAConfig(n_cores=1))
        eight = spmm_model(1000, 16000, 256, PIUMAConfig(n_cores=8))
        assert eight.gflops == pytest.approx(8 * one.gflops)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            spmm_model(10, 10, 8, PIUMAConfig(), read_bandwidth=-1.0)

    def test_zero_bandwidth_override_raises(self):
        """Regression: falsy overrides used to silently fall back to
        the config default via ``or`` instead of raising."""
        with pytest.raises(ValueError):
            spmm_model(10, 10, 8, PIUMAConfig(), read_bandwidth=0.0)
        with pytest.raises(ValueError):
            spmm_model(10, 10, 8, PIUMAConfig(), write_bandwidth=0.0)

    def test_small_override_is_honored_not_ignored(self):
        """A tiny (near-falsy) override must slow the model down, not
        be swallowed by the default-bandwidth fallback."""
        cfg = PIUMAConfig(n_cores=1)
        throttled = spmm_model(100, 1000, 64, cfg, read_bandwidth=1e-6)
        nominal = spmm_model(100, 1000, 64, cfg)
        assert throttled.time_ns > 1e5 * nominal.time_ns


class TestDenseMM:
    def test_peak_scales_with_pipelines(self):
        assert peak_mac_gflops(PIUMAConfig(n_cores=8)) == pytest.approx(
            8 * 4 * 2.0 * 2.0
        )

    def test_compute_bound_for_large_k(self):
        est = dense_mm_time(10_000, 256, 256, PIUMAConfig())
        assert est.bound == "compute"

    def test_bandwidth_bound_for_tiny_k(self):
        est = dense_mm_time(100_000, 1, 1, PIUMAConfig())
        assert est.bound == "bandwidth"

    def test_flop_count(self):
        est = dense_mm_time(10, 4, 6, PIUMAConfig())
        assert est.flops == 2 * 10 * 4 * 6

    def test_validation(self):
        with pytest.raises(ValueError):
            dense_mm_time(0, 4, 4, PIUMAConfig())
        with pytest.raises(ValueError):
            dense_mm_time(4, 4, 4, PIUMAConfig(), efficiency=0.0)


class TestPIUMAGCN:
    def test_breakdown_positive(self):
        w = workload_for("arxiv", hidden_dim=64)
        b = gcn_breakdown(w, PIUMAConfig.node())
        assert b.spmm > 0 and b.dense > 0 and b.glue > 0
        assert b.offload == 0 and b.sampling == 0

    def test_dense_share_grows_with_embedding(self):
        """Fig 10: larger K shifts PIUMA time toward Dense MM."""
        node = PIUMAConfig.node()
        small = gcn_breakdown(workload_for("products", 8), node)
        large = gcn_breakdown(workload_for("products", 256), node)
        assert large.fraction("dense") > small.fraction("dense")

    def test_large_k_dense_dominated(self):
        """Paper: arxiv/collab/mag/citation2/papers are >75% Dense MM at
        K=256 on PIUMA."""
        node = PIUMAConfig.node()
        for name in ("arxiv", "collab", "mag", "citation2"):
            b = gcn_breakdown(workload_for(name, 256), node)
            assert b.fraction("dense") > 0.6, name

    def test_spmm_efficiency_validated(self):
        w = workload_for("arxiv", 64)
        shape = w.layer_shapes()[0]
        with pytest.raises(ValueError):
            layer_breakdown(shape, PIUMAConfig(), spmm_efficiency=1.5)

    def test_lower_efficiency_is_slower(self):
        w = workload_for("arxiv", 64)
        node = PIUMAConfig.node()
        fast = gcn_breakdown(w, node, spmm_efficiency=0.9)
        slow = gcn_breakdown(w, node, spmm_efficiency=0.5)
        assert slow.spmm > fast.spmm
