"""Edge cases across the simulator and models."""

import numpy as np
import pytest

from repro.piuma import PIUMAConfig, simulate_spmm, spmm_model
from repro.sparse.csr import CSRMatrix


def path_graph(n):
    """A simple chain 0 -> 1 -> ... -> n-1."""
    src = list(range(n - 1))
    dst = list(range(1, n))
    return CSRMatrix.from_edges(src, dst, shape=(n, n))


class TestTinyInputs:
    def test_single_edge_graph(self):
        adj = CSRMatrix.from_edges([0], [1], shape=(2, 2))
        result = simulate_spmm(adj, 8, PIUMAConfig(n_cores=1))
        assert result.window_edges == 1
        assert result.projected_time_ns > 0

    def test_k_equals_one(self):
        adj = path_graph(64)
        result = simulate_spmm(adj, 1, PIUMAConfig(n_cores=1))
        assert result.gflops > 0

    def test_single_thread_machine(self):
        cfg = PIUMAConfig(n_cores=1, mtps_per_core=1, threads_per_mtp=1)
        adj = path_graph(128)
        result = simulate_spmm(adj, 8, cfg)
        assert result.window_edges == adj.nnz

    def test_more_threads_than_edges(self):
        cfg = PIUMAConfig(n_cores=8)  # 512 threads
        adj = path_graph(32)  # 31 edges
        result = simulate_spmm(adj, 8, cfg)
        assert result.window_edges == adj.nnz

    def test_window_larger_than_graph(self):
        adj = path_graph(64)
        result = simulate_spmm(
            adj, 8, PIUMAConfig(n_cores=1), window_edges=10**6
        )
        assert result.window_edges == adj.nnz

    def test_vertex_kernel_on_path(self):
        adj = path_graph(256)
        result = simulate_spmm(adj, 8, PIUMAConfig(n_cores=2), "vertex")
        assert result.gflops > 0

    def test_dense_rows_graph(self):
        """One vertex with every edge (a pure star)."""
        n = 512
        adj = CSRMatrix.from_edges(
            [0] * (n - 1), list(range(1, n)), shape=(n, n)
        )
        for kernel in ("dma", "loop", "vertex"):
            result = simulate_spmm(adj, 16, PIUMAConfig(n_cores=2), kernel)
            assert np.isfinite(result.gflops), kernel


class TestModelEdgeCases:
    def test_model_k_one(self):
        m = spmm_model(100, 200, 1, PIUMAConfig(n_cores=1))
        assert m.time_ns > 0

    def test_model_self_consistency_across_k(self):
        cfg = PIUMAConfig(n_cores=1)
        times = [spmm_model(1000, 8000, k, cfg).time_ns for k in (1, 8, 64)]
        assert times[0] < times[1] < times[2]

    def test_launch_overhead_floor(self):
        """Tiny kernels are launch-dominated on PIUMA (the small-graph
        weakness the paper's GPU comparison exploits for ddi)."""
        adj = path_graph(16)
        cfg = PIUMAConfig(n_cores=1)
        result = simulate_spmm(adj, 8, cfg)
        assert result.projected_time_ns >= cfg.launch_overhead_ns
