"""Calendar-queue scheduler backend: unit oracle + engine conformance.

The calendar queue (``repro.piuma.scheduler.CalendarQueue``) must pop
entries in exactly the ``(when, seq)`` total order a binary heap
would — that is the engines' bit-identity contract.  The unit half of
this suite drives the queue against a :mod:`heapq` oracle through
randomized interleavings, FIFO ties, overflow spills, growth, and
retune rebuilds.  The engine half runs full SpMM simulations on all
four loop x scheduler combinations — including under degradation
specs and watchdog trips — and requires identical results.
"""

import heapq
import random

import pytest

from repro.graphs.rmat import rmat_for_size
from repro.piuma import simulate_spmm
from repro.piuma.config import PIUMAConfig
from repro.piuma.degradation import DEGRADATION_PRESETS
from repro.piuma.engine import Simulator
from repro.piuma.scheduler import (
    SCHEDULERS,
    CalendarQueue,
    HeapScheduler,
    make_scheduler,
)
from repro.runtime.errors import InvariantViolation, SimulationDiverged


def _drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


class TestFactory:
    def test_make_scheduler(self):
        assert isinstance(make_scheduler("heap"), HeapScheduler)
        assert isinstance(make_scheduler("calendar"), CalendarQueue)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("splay")

    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="scheduler"):
            PIUMAConfig(scheduler="splay")
        for name in SCHEDULERS:
            assert PIUMAConfig(scheduler=name).scheduler == name

    def test_calendar_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CalendarQueue(width=0.0)
        with pytest.raises(ValueError):
            CalendarQueue(min_buckets=12)


class TestCalendarUnit:
    """CalendarQueue against a heapq oracle and its own counters."""

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop()

    def test_fifo_among_equal_when(self):
        """Equal-``when`` entries must pop in seq order even when the
        pushes arrive with their seqs interleaved out of order."""
        q = CalendarQueue(width=1.0)
        entries = [(5.0, seq, seq, None) for seq in (3, 1, 4, 0, 2)]
        for entry in entries:
            q.push(entry)
        assert _drain(q) == sorted(entries)

    def test_peek_matches_pop(self):
        q = CalendarQueue(width=0.5)
        for when in (9.0, 2.5, 7.25, 2.5):
            q.push((when, q.spills + len(q), 0, None))
        while q:
            assert q.peek() == q.pop()

    def test_push_behind_cursor_still_pops_first(self):
        q = CalendarQueue(width=1.0)
        for seq, when in enumerate((1.0, 8.0, 9.0)):
            q.push((when, seq, 0, None))
        assert q.pop()[0] == 1.0  # cursor now at day 1
        q.push((0.25, 99, 0, None))  # behind the cursor
        assert q.pop() == (0.25, 99, 0, None)

    def test_overflow_spill_and_migration(self):
        """Entries a year+ ahead spill to the heap, then migrate back
        in ``(when, seq)`` order as the cursor's horizon advances."""
        q = CalendarQueue(width=1.0, min_buckets=16)
        near = [(float(i), i, i, None) for i in range(8)]
        far = [(1000.0 + (i % 3), 100 + i, i, None) for i in range(6)]
        for entry in near + far:
            q.push(entry)
        assert q.spills == len(far)
        assert len(q.overflow) == len(far)
        assert _drain(q) == sorted(near + far)
        assert q.stranded() == 0

    def test_growth_rebuild_preserves_order(self):
        q = CalendarQueue(width=1.0, min_buckets=16)
        entries = [(float(i % 13), i, i, None) for i in range(200)]
        for entry in entries:
            q.push(entry)
        assert q.resizes >= 1  # 200 entries > 2x ring at 16 and 32
        assert q.n_buckets > 16
        assert _drain(q) == sorted(entries)

    def test_retune_refits_width_and_preserves_order(self):
        """A ring tuned for ns-scale deltas retunes onto a us-scale
        population without changing the pop order."""
        q = CalendarQueue(width=1.0, min_buckets=16)
        entries = [(i * 500.0, i, i, None) for i in range(64)]
        for entry in entries:
            q.push(entry)
        before = (q.width, q.n_buckets)
        assert q.retune() is True
        assert (q.width, q.n_buckets) != before
        assert q.width > 1.0  # fitted to the ~500 ns deltas
        assert _drain(q) == sorted(entries)

    def test_retune_degenerate_span_is_noop(self):
        q = CalendarQueue(width=1.0)
        for seq in range(16):
            q.push((4.0, seq, 0, None))
        assert q.retune() is False  # zero span: nothing to fit

    def test_retune_hysteresis(self):
        q = CalendarQueue(width=1.0, min_buckets=16)
        for i in range(64):
            q.push((i * 500.0, i, i, None))
        assert q.retune() is True
        assert q.retune() is False  # geometry already fitted

    def test_len_and_stranded_agree(self):
        q = CalendarQueue(width=1.0, min_buckets=16)
        rng = random.Random(7)
        live = 0
        for seq in range(300):
            if live and rng.random() < 0.4:
                q.pop()
                live -= 1
            else:
                q.push((rng.uniform(0.0, 5000.0), seq, 0, None))
                live += 1
            assert len(q) == q.stranded() == live

    @pytest.mark.parametrize("trial", range(12))
    def test_randomized_vs_heapq_oracle(self, trial):
        """Interleaved push/pop streams — ties, clustered sub-ns
        values, far-future spikes, mid-stream retunes — must replay
        the heapq pop sequence exactly."""
        rng = random.Random(0xCA1 + trial)
        q = CalendarQueue(
            width=rng.choice((0.125, 1.0, 64.0)), min_buckets=16
        )
        oracle = []
        got, want = [], []
        now = 0.0
        for seq in range(400):
            roll = rng.random()
            if oracle and roll < 0.45:
                got.append(q.pop())
                want.append(heapq.heappop(oracle))
                now = want[-1][0]
            else:
                if roll > 0.97:
                    when = now + rng.uniform(1e5, 1e6)  # spill territory
                elif roll > 0.9:
                    when = now  # exact tie with the frontier
                else:
                    when = now + rng.uniform(0.0, 50.0)
                entry = (when, seq, seq & 7, None)
                q.push(entry)
                heapq.heappush(oracle, entry)
            if seq % 97 == 0:
                q.retune()
        got.extend(_drain(q))
        while oracle:
            want.append(heapq.heappop(oracle))
        assert got == want
        assert len(q) == q.stranded() == 0


def _fingerprint(result):
    """Everything the loop x scheduler combinations must agree on."""
    return (
        result.sim_time_ns,
        result.gflops,
        result.projected_time_ns,
        result.memory_utilization,
        result.achieved_bandwidth,
        result.window_edges,
        result.events,
        sorted(
            (tag, s.count, s.bytes, s.wait_ns)
            for tag, s in result.tag_stats.items()
        ),
    )


#: Every main-loop x scheduler combination the engine dispatches.
COMBOS = (
    (True, "heap"),
    (True, "calendar"),
    (False, "heap"),
    (False, "calendar"),
)


def _all_combos(adj, embedding_dim, kernel="dma", **overrides):
    return [
        _fingerprint(
            simulate_spmm(
                adj, embedding_dim,
                PIUMAConfig(
                    engine_fast_path=fast, scheduler=scheduler, **overrides
                ),
                kernel=kernel,
            )
        )
        for fast, scheduler in COMBOS
    ]


class TestEngineConformance:
    """Full-simulation bit-identity across every backend combination."""

    @pytest.fixture(scope="class")
    def window(self):
        return rmat_for_size(2048, 2048 * 8, seed=11)

    @pytest.mark.parametrize("kernel", ("dma", "loop", "vertex"))
    def test_kernels_identical_across_backends(self, window, kernel):
        prints = _all_combos(
            window, 32, kernel=kernel, n_cores=4, check_level=1
        )
        assert prints.count(prints[0]) == len(prints), kernel

    @pytest.mark.parametrize("preset", ("moderate", "dma"))
    def test_degraded_runs_identical(self, window, preset):
        """Non-trivial fault specs (stalled slices, flaky DMA retries)
        reorder nothing: the calendar backend tracks the heap exactly."""
        prints = _all_combos(
            window, 32, kernel="dma", n_cores=4, check_level=1,
            degradation=DEGRADATION_PRESETS[preset],
        )
        assert prints.count(prints[0]) == len(prints), preset

    def test_watchdog_trips_identically(self, window):
        """The max_events ceiling must fire on the same event with the
        same cause on every backend — the watchdogs read the same
        counters regardless of the queue implementation."""
        messages = set()
        for fast, scheduler in COMBOS:
            config = PIUMAConfig(
                engine_fast_path=fast, scheduler=scheduler,
                n_cores=4, max_events=5000,
            )
            with pytest.raises(SimulationDiverged) as err:
                simulate_spmm(window, 32, config, kernel="dma")
            assert err.value.cause == "max_events"
            messages.add(str(err.value))
        assert len(messages) == 1

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_scheduler_drained_invariant_fires(self, scheduler):
        """A stranded entry after run() must trip the level-1
        ``scheduler-drained`` invariant on both backends."""
        from repro.piuma.ops import Compute

        def tiny_thread():
            yield Compute(16)

        config = PIUMAConfig(n_cores=1, check_level=1, scheduler=scheduler)
        sim = Simulator(config)
        sim.spawn(tiny_thread(), 0, 0)
        sim.run()
        # Simulate the lost-event bug class: an entry the main loop
        # never consumed is still queued when the post-run check walks
        # the scheduler.
        sim._scheduler.push((1.0, sim._seq, 0, None))
        sim._seq += 1
        with pytest.raises(InvariantViolation) as err:
            sim.checker.after_run()
        assert err.value.invariant == "scheduler-drained"

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_clean_run_passes_drained_invariant(self, scheduler):
        """The same level-1 run without the seeded bug completes."""
        from repro.piuma.ops import Compute

        def tiny_thread():
            yield Compute(16)

        config = PIUMAConfig(n_cores=1, check_level=1, scheduler=scheduler)
        sim = Simulator(config)
        sim.spawn(tiny_thread(), 0, 0)
        assert sim.run() > 0.0
        assert len(sim._scheduler) == 0
