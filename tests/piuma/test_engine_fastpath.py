"""Fast-path vs reference-path engine equivalence.

The DES has two main loops (``PIUMAConfig.engine_fast_path``): the
peek-ahead/type-dispatch fast path and the plain pop/execute/push
reference loop.  The contract is **bit-identical results** — same
``end_time``, per-tag stats, utilizations, bandwidth, and event count.
This suite pins golden numbers on a fixed window and differentially
fuzzes the two paths across a randomized RMAT grid covering every
kernel, so any divergence introduced by a hot-path "optimization" fails
loudly.

The contract extends across the event-scheduler axis
(``PIUMAConfig.scheduler``): the calendar-queue backend must reproduce
the heap backend bit-for-bit.  Goldens and every fuzz point also run
the fast loop over the calendar queue with the runtime sanitizer armed
(``check_level=1``), so a divergence or a stranded event in the
bucketed ring fails the same assertions.

And across the main-loop axis (``PIUMAConfig.engine``): the vector
replay engine — op programs compiled at spawn time, deferred integral
counters settled post-run — joins the goldens, the full 21-point fuzz
grid, and the dynamic-kernel point, also with the sanitizer armed, so
its batched bookkeeping is held to the same exact fingerprint.
"""

import random

import pytest

from repro.graphs.rmat import rmat_for_size
from repro.piuma import simulate_spmm
from repro.piuma.config import PIUMAConfig
from repro.piuma.engine import Simulator
from repro.piuma.ops import DMAOp
from repro.piuma.spmm_dma import dma_thread
from repro.piuma.spmm_dynamic import simulate_spmm_dynamic


def _result_fingerprint(result):
    """Everything the two engine paths must agree on, exactly."""
    return (
        result.sim_time_ns,
        result.gflops,
        result.projected_time_ns,
        result.memory_utilization,
        result.achieved_bandwidth,
        result.window_edges,
        result.events,
        sorted(
            (tag, s.count, s.bytes, s.wait_ns)
            for tag, s in result.tag_stats.items()
        ),
    )


def _both_paths(adj, embedding_dim, kernel="dma", **overrides):
    fast = simulate_spmm(
        adj, embedding_dim,
        PIUMAConfig(engine_fast_path=True, **overrides), kernel=kernel,
    )
    ref = simulate_spmm(
        adj, embedding_dim,
        PIUMAConfig(engine_fast_path=False, **overrides), kernel=kernel,
    )
    return fast, ref


def _calendar_path(adj, embedding_dim, kernel="dma", **overrides):
    """Fast loop over the calendar-queue backend, sanitizer armed.

    ``check_level=1`` arms the runtime invariant checker (including the
    ``scheduler-drained`` post-run check) inside the run; the result it
    returns must still be bit-identical to the heap backend's.
    """
    return simulate_spmm(
        adj, embedding_dim,
        PIUMAConfig(engine_fast_path=True, scheduler="calendar",
                    check_level=1, **overrides),
        kernel=kernel,
    )


def _vector_path(adj, embedding_dim, kernel="dma", **overrides):
    """Vector replay engine, sanitizer armed.

    ``check_level=1`` keeps the runtime invariant hooks live on the
    batched path (the deferred counters must settle to *exactly* what
    the sanitizer recomputes from raw simulator state post-run).
    """
    return simulate_spmm(
        adj, embedding_dim,
        PIUMAConfig(engine="vector", check_level=1, **overrides),
        kernel=kernel,
    )


class TestGolden:
    """Pinned results on a fixed window, identical on both paths.

    The float goldens use a tight relative tolerance (libm-level
    differences only); fast-vs-reference equality is exact.
    """

    @pytest.fixture(scope="class")
    def window(self):
        return rmat_for_size(4096, 4096 * 8, seed=11)

    def test_pinned_end_time_and_stats(self, window):
        fast, ref = _both_paths(window, 64, n_cores=4)
        assert _result_fingerprint(fast) == _result_fingerprint(ref)
        cal = _calendar_path(window, 64, n_cores=4)
        assert _result_fingerprint(cal) == _result_fingerprint(fast)
        vec = _vector_path(window, 64, n_cores=4)
        assert _result_fingerprint(vec) == _result_fingerprint(fast)
        assert fast.sim_time_ns == pytest.approx(41025.25, rel=1e-12)
        assert fast.gflops == pytest.approx(41.67907254057635, rel=1e-9)
        assert fast.events == 28232
        stats = fast.tag_stats
        assert stats["dma_read"].count == 12288
        assert stats["dma_init"].count == 12288
        assert stats["nnz"].count == 1536
        assert stats["atomic_write"].count == 1352
        assert stats["dma_read"].bytes == pytest.approx(3145728.0)

    def test_loop_kernel_pinned(self, window):
        fast, ref = _both_paths(window, 64, kernel="loop", n_cores=4)
        assert _result_fingerprint(fast) == _result_fingerprint(ref)
        cal = _calendar_path(window, 64, kernel="loop", n_cores=4)
        assert _result_fingerprint(cal) == _result_fingerprint(fast)
        vec = _vector_path(window, 64, kernel="loop", n_cores=4)
        assert _result_fingerprint(vec) == _result_fingerprint(fast)
        assert fast.sim_time_ns == pytest.approx(42644.5625, rel=1e-12)
        assert fast.events == 15944


class TestDifferential:
    """Randomized fast-vs-reference fuzzing over an RMAT grid.

    20+ points spanning kernels, core counts, thread counts, embedding
    dims, and graph shapes; every fingerprint field must match exactly.
    """

    def _grid(self):
        rng = random.Random(0xF457)
        points = []
        kernels = ("dma", "loop", "vertex")
        for i in range(21):
            points.append({
                "n_vertices": rng.choice((512, 1024, 2048)),
                "degree": rng.choice((4, 8, 12)),
                "graph_seed": rng.randrange(1000),
                "kernel": kernels[i % len(kernels)],
                "embedding_dim": rng.choice((16, 32, 64)),
                "n_cores": rng.choice((1, 2, 4)),
                "threads_per_mtp": rng.choice((2, 4)),
            })
        return points

    @pytest.mark.parametrize("index", range(21))
    def test_point(self, index):
        point = self._grid()[index]
        adj = rmat_for_size(
            point["n_vertices"],
            point["n_vertices"] * point["degree"],
            seed=point["graph_seed"],
        )
        fast, ref = _both_paths(
            adj, point["embedding_dim"], kernel=point["kernel"],
            n_cores=point["n_cores"],
            threads_per_mtp=point["threads_per_mtp"],
        )
        assert _result_fingerprint(fast) == _result_fingerprint(ref), point
        cal = _calendar_path(
            adj, point["embedding_dim"], kernel=point["kernel"],
            n_cores=point["n_cores"],
            threads_per_mtp=point["threads_per_mtp"],
        )
        assert _result_fingerprint(cal) == _result_fingerprint(fast), point
        vec = _vector_path(
            adj, point["embedding_dim"], kernel=point["kernel"],
            n_cores=point["n_cores"],
            threads_per_mtp=point["threads_per_mtp"],
        )
        assert _result_fingerprint(vec) == _result_fingerprint(fast), point

    def test_dynamic_kernel(self):
        adj = rmat_for_size(1024, 1024 * 8, seed=5)
        fast = simulate_spmm_dynamic(
            adj, 32, PIUMAConfig(n_cores=2, threads_per_mtp=2)
        )
        ref = simulate_spmm_dynamic(
            adj, 32,
            PIUMAConfig(n_cores=2, threads_per_mtp=2, engine_fast_path=False),
        )
        assert _result_fingerprint(fast) == _result_fingerprint(ref)
        cal = simulate_spmm_dynamic(
            adj, 32,
            PIUMAConfig(n_cores=2, threads_per_mtp=2, scheduler="calendar",
                        check_level=1),
        )
        assert _result_fingerprint(cal) == _result_fingerprint(fast)
        # The work-stealing kernel is not program_safe: under the
        # vector engine its threads stay generator-driven and run in
        # the general loop, still bit-identical.
        vec = simulate_spmm_dynamic(
            adj, 32,
            PIUMAConfig(n_cores=2, threads_per_mtp=2, engine="vector",
                        check_level=1),
        )
        assert _result_fingerprint(vec) == _result_fingerprint(fast)


class TestStripeTargets:
    def test_fractional_nbytes_truncates(self):
        """Float shares must not grow the stripe count by one line."""
        sim = Simulator(PIUMAConfig(n_cores=8))
        exact = sim._stripe_targets(0, 128)
        noisy = sim._stripe_targets(0, 128.00000000001)
        assert noisy == exact
        assert len(sim._stripe_targets(0, 128.5)) == len(exact)

    def test_dma_targets_match_stripe_targets(self):
        sim = Simulator(PIUMAConfig(n_cores=8))
        cores = sim._stripe_targets(3, 1024)
        dma = sim._dma_stripe_targets(3, 1024)
        assert [core for _slice, core in dma] == cores
        assert all(s is sim.slices[c] for s, c in dma)


class TestOpInterning:
    def test_shared_table_interns_across_threads(self):
        """Two threads with one shared table yield identical instances."""
        from repro.piuma.kernels import split_work
        adj = rmat_for_size(512, 4096, seed=1)
        config = PIUMAConfig(n_cores=2, threads_per_mtp=2)
        work = split_work(adj, config, 512)
        assert len(work) >= 2
        shared = {}
        ops_a = list(dma_thread(work[0], 32, config, shared=shared))
        ops_b = list(dma_thread(work[1], 32, config, shared=shared))
        ids_a = {id(op) for op in ops_a if isinstance(op, DMAOp)}
        ids_b = {id(op) for op in ops_b if isinstance(op, DMAOp)}
        assert ids_a & ids_b, "no DMA op instances shared across threads"

    def test_without_shared_table_sequences_equal(self):
        """Sharing the intern table must not change the yielded values."""
        from repro.piuma.kernels import split_work
        adj = rmat_for_size(512, 4096, seed=1)
        config = PIUMAConfig(n_cores=2, threads_per_mtp=2)
        work = split_work(adj, config, 512)[0]
        private = list(dma_thread(work, 32, config))
        shared = list(dma_thread(work, 32, config, shared={}))
        assert private == shared

    def test_dma_kind_validated_at_construction(self):
        with pytest.raises(ValueError):
            DMAOp(kind="sideways", nbytes=0, target_core=0, tag="x")
