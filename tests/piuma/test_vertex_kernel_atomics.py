"""Vertex-parallel kernel and the remote-atomics engine (Section IV-B).

The paper weighs three trade-offs between the parallelization
strategies: binary search (edge-parallel only), atomic write-backs
(edge-parallel only) and load imbalance (vertex-parallel only), and
concludes edge-parallel wins on PIUMA because the atomics are nearly
free while imbalance is not.
"""

import pytest

from repro.graphs.rmat import GRAPH500, UNIFORM, RMATParams, rmat_graph
from repro.piuma import PIUMAConfig, simulate_spmm
from repro.piuma.kernels import auto_window
from repro.piuma.spmm_vertex import split_work_vertex


@pytest.fixture(scope="module")
def skewed():
    return rmat_graph(RMATParams(scale=13, edge_factor=16, abcd=GRAPH500),
                      seed=1)


@pytest.fixture(scope="module")
def uniform():
    return rmat_graph(RMATParams(scale=13, edge_factor=16, abcd=UNIFORM),
                      seed=1)


class TestVertexSplit:
    def test_row_ranges_disjoint_and_ordered(self, skewed):
        cfg = PIUMAConfig(n_cores=2)
        work = split_work_vertex(skewed, cfg, auto_window(cfg, skewed.nnz))
        previous_end = -1
        for w in work:
            assert w.rows[0] > previous_end
            previous_end = int(w.rows[-1])

    def test_window_proportional_to_ownership(self, skewed):
        """Hub-owning threads simulate proportionally more edges —
        that's what exposes the imbalance in a down-scaled window."""
        cfg = PIUMAConfig(n_cores=2)
        window = auto_window(cfg, skewed.nnz)
        work = split_work_vertex(skewed, cfg, window)
        sizes = [len(w.cols) for w in work]
        assert max(sizes) > 5 * (sum(sizes) / len(sizes))

    def test_total_close_to_window(self, skewed):
        cfg = PIUMAConfig(n_cores=2)
        window = auto_window(cfg, skewed.nnz)
        work = split_work_vertex(skewed, cfg, window)
        total = sum(len(w.cols) for w in work)
        assert total == pytest.approx(window, rel=0.1)

    def test_full_window_takes_everything(self, skewed):
        cfg = PIUMAConfig(n_cores=1)
        work = split_work_vertex(skewed, cfg, skewed.nnz)
        assert sum(len(w.cols) for w in work) == skewed.nnz


class TestKernelTradeoffs:
    def test_vertex_kernel_has_no_atomics_or_search(self, skewed):
        result = simulate_spmm(skewed, 32, PIUMAConfig(n_cores=2), "vertex")
        assert "atomic_write" not in result.tag_stats
        assert "binary_search" not in result.tag_stats
        assert "dma_write" in result.tag_stats

    def test_edge_kernel_pays_atomics_and_search(self, skewed):
        result = simulate_spmm(skewed, 32, PIUMAConfig(n_cores=2), "dma")
        assert result.tag_stats["atomic_write"].count > 0
        assert result.tag_stats["binary_search"].count > 0

    @pytest.mark.slow
    def test_imbalance_hurts_vertex_parallel_at_scale(self, skewed):
        """The paper's reason to go edge-parallel: hub threads become
        the critical path once bandwidth no longer hides them."""
        cfg = PIUMAConfig(n_cores=16)
        edge = simulate_spmm(skewed, 64, cfg, "dma").gflops
        vertex = simulate_spmm(skewed, 64, cfg, "vertex").gflops
        assert edge > 1.5 * vertex

    @pytest.mark.slow
    def test_uniform_graph_no_imbalance_penalty(self, uniform):
        """On uniform-degree graphs the two divisions are equivalent
        (vertex-parallel even saves the atomics)."""
        cfg = PIUMAConfig(n_cores=16)
        edge = simulate_spmm(uniform, 64, cfg, "dma").gflops
        vertex = simulate_spmm(uniform, 64, cfg, "vertex").gflops
        assert vertex > 0.8 * edge

    def test_unknown_kernel_rejected(self, uniform):
        with pytest.raises(ValueError):
            simulate_spmm(uniform, 8, PIUMAConfig(n_cores=1), "warp")


class TestAtomicEngine:
    def test_atomics_charge_rmw_traffic(self, skewed):
        """An atomic update reads and writes the row: 2x bytes."""
        result = simulate_spmm(skewed, 32, PIUMAConfig(n_cores=2), "dma")
        stats = result.tag_stats["atomic_write"]
        rows_written = stats.count
        assert stats.bytes == pytest.approx(
            2 * rows_written * 32 * 4, rel=0.01
        )

    def test_cheap_atomics_keep_edge_parallel_fast(self, skewed):
        """PIUMA's selling point: expensive atomics would sink the
        edge-parallel kernel; the near-memory units keep it fast."""
        cfg = PIUMAConfig(n_cores=8)
        fast = simulate_spmm(skewed, 64, cfg, "dma").gflops
        costly = simulate_spmm(
            skewed, 64, cfg.with_(atomic_overhead_ns=500.0,
                                  atomic_rate_gbps=0.5),
            "dma",
        ).gflops
        assert fast > 1.5 * costly
