import pytest

from repro.graphs.rmat import RMATParams, rmat_graph
from repro.piuma import PIUMAConfig
from repro.piuma.engine import Simulator
from repro.piuma.kernels import split_work
from repro.piuma.spmm_dma import dma_thread
from repro.piuma.trace import Tracer


def traced_run(capacity=10_000, window=1024):
    adj = rmat_graph(RMATParams(scale=9, edge_factor=8), seed=1)
    config = PIUMAConfig(n_cores=2)
    simulator = Simulator(config)
    tracer = Tracer(simulator, capacity=capacity)
    for work in split_work(adj, config, window):
        simulator.spawn(dma_thread(work, 16, config), work.core, work.mtp)
    simulator.run()
    return tracer


class TestTracer:
    def test_records_events(self):
        tracer = traced_run()
        assert len(tracer.events) > 100
        tags = {e.tag for e in tracer.events}
        assert "nnz" in tags and "dma_read" in tags

    def test_events_time_ordered_issue(self):
        tracer = traced_run()
        times = [e.issued_at for e in tracer.events]
        assert times == sorted(times)

    def test_blocked_time_positive_for_loads(self):
        tracer = traced_run()
        blocked = tracer.blocked_time_by_tag()
        assert blocked["nnz"] > 0

        # Async DMA ops cost only issue slots; a blocking NNZ load
        # stalls its thread for a full memory round trip.
        def per_op(tag):
            events = [e for e in tracer.events if e.tag == tag]
            return sum(e.blocked_ns for e in events) / len(events)

        assert per_op("nnz") > 3 * per_op("dma_read")

    def test_capacity_bound(self):
        tracer = traced_run(capacity=50)
        assert len(tracer.events) == 50
        assert tracer.dropped > 0

    def test_slowest_sorted(self):
        tracer = traced_run()
        slowest = tracer.slowest(5)
        assert len(slowest) == 5
        assert all(
            a.blocked_ns >= b.blocked_ns
            for a, b in zip(slowest, slowest[1:])
        )

    def test_render(self):
        tracer = traced_run(capacity=100)
        text = tracer.render(limit=10)
        assert "tag" in text
        assert "more events" in text

    def test_detach_stops_recording(self):
        adj = rmat_graph(RMATParams(scale=8, edge_factor=4), seed=0)
        config = PIUMAConfig(n_cores=1)
        simulator = Simulator(config)
        tracer = Tracer(simulator)
        tracer.detach()
        for work in split_work(adj, config, 256):
            simulator.spawn(dma_thread(work, 8, config), work.core, work.mtp)
        simulator.run()
        assert len(tracer.events) == 0

    def test_validation(self):
        simulator = Simulator(PIUMAConfig(n_cores=1))
        with pytest.raises(ValueError):
            Tracer(simulator, capacity=0)
