"""Property-based sanity over the analytical platform models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.config import XeonConfig
from repro.cpu.densemm import dense_mm_time as cpu_dense
from repro.cpu.spmm import spmm_time
from repro.gpu.config import A100Config
from repro.gpu.kernels import spmm_time as gpu_spmm
from repro.piuma.analytical import spmm_model
from repro.piuma.config import PIUMAConfig

sizes = st.tuples(
    st.integers(10, 10**7),          # vertices
    st.integers(10, 10**8),          # edges
    st.sampled_from([1, 8, 64, 256]),  # K
)


@given(sizes)
@settings(max_examples=60, deadline=None)
def test_cpu_spmm_time_positive_and_finite(size):
    v, e, k = size
    est = spmm_time(v, e, k, XeonConfig())
    assert est.time_ns > 0
    assert est.gflops > 0
    assert 0 <= est.hit_rate <= 0.98


@given(sizes, st.integers(1, 160))
@settings(max_examples=60, deadline=None)
def test_cpu_spmm_monotone_in_problem_size(size, cores):
    v, e, k = size
    cfg = XeonConfig()
    small = spmm_time(v, e, k, cfg, n_cores=cores).time_ns
    bigger = spmm_time(v, 2 * e, k, cfg, n_cores=cores).time_ns
    assert bigger > small


@given(sizes)
@settings(max_examples=60, deadline=None)
def test_piuma_model_scales_inversely_with_bandwidth(size):
    v, e, k = size
    one = spmm_model(v, e, k, PIUMAConfig(n_cores=1))
    four = spmm_model(v, e, k, PIUMAConfig(n_cores=4))
    assert four.time_ns == pytest.approx(one.time_ns / 4)


@given(sizes, st.floats(0.0, 0.99))
@settings(max_examples=60, deadline=None)
def test_gpu_spmm_locality_never_hurts(size, locality):
    v, e, k = size
    cfg = A100Config()
    base = gpu_spmm(v, e, k, cfg, locality=0.0).time_ns
    better = gpu_spmm(v, e, k, cfg, locality=locality).time_ns
    assert better <= base + 1e-9


@given(
    st.integers(10, 10**7),
    st.sampled_from([1, 8, 64, 256]),
    st.sampled_from([2, 48, 256]),
)
@settings(max_examples=60, deadline=None)
def test_cpu_dense_bounded_by_rooflines(v, in_dim, out_dim):
    cfg = XeonConfig()
    est = cpu_dense(v, in_dim, out_dim, cfg)
    assert est.gflops <= cfg.peak_gflops() + 1e-9
    assert est.time_ns > 0


@given(sizes)
@settings(max_examples=40, deadline=None)
def test_breakdown_fractions_always_normalize(size):
    from repro.core.gcn import LayerShape
    from repro.cpu.gcn import layer_breakdown

    v, e, k = size
    shape = LayerShape(n_vertices=v, n_edges=e, in_dim=k, out_dim=48)
    b = layer_breakdown(shape, XeonConfig())
    total = sum(b.fraction(c) for c in ("spmm", "dense", "glue"))
    assert total == pytest.approx(1.0)
