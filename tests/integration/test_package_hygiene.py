"""Package-level hygiene: every module imports, every __all__ resolves."""

import importlib
import pathlib
import pkgutil

import pytest

import repro

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent


def all_modules():
    names = ["repro"]
    for module in pkgutil.walk_packages([str(PACKAGE_ROOT)], prefix="repro."):
        if module.name.endswith("__main__"):
            continue  # importing it dispatches the CLI
        names.append(module.name)
    return sorted(names)


MODULES = all_modules()


@pytest.mark.parametrize("name", MODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", MODULES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    for entry in getattr(module, "__all__", ()):
        assert hasattr(module, entry), f"{name}.__all__ lists missing {entry}"


@pytest.mark.parametrize("name", MODULES)
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


def test_expected_subpackages_present():
    packages = {m.split(".")[1] for m in MODULES if m.count(".") == 1}
    assert {
        "sparse", "graphs", "core", "piuma", "cpu", "gpu",
        "workloads", "report", "validation", "ext",
    } <= packages


def test_version():
    assert repro.__version__ == "1.0.0"


def test_measured_locality_moves_with_ordering():
    """The measurement-to-model bridge responds to reordering."""
    from repro.cpu import measured_locality
    from repro.graphs.rmat import RMATParams, rmat_graph
    from repro.sparse import apply_permutation, random_order, rcm_order

    adj = rmat_graph(RMATParams(scale=13, edge_factor=8), seed=0)
    shuffled = apply_permutation(adj, random_order(adj, seed=1))
    ordered = apply_permutation(shuffled, rcm_order(shuffled))
    assert measured_locality(ordered, window=2048) > measured_locality(
        shuffled, window=2048
    )
    assert 0.0 <= measured_locality(shuffled) <= 0.95
