import pytest

from repro.graphs.datasets import get_dataset
from repro.piuma.config import PIUMAConfig
from repro.validation import (
    calibrate_spmm_efficiency,
    check_conservation,
    check_monotonicity,
    run_all_checks,
)
from repro.validation.verify import check_determinism


@pytest.fixture(scope="module")
def reference_graph():
    return get_dataset("products").materialize(max_vertices=8192, seed=7)


class TestCalibration:
    def test_small_grid(self, reference_graph):
        result = calibrate_spmm_efficiency(
            reference_graph, core_counts=(1, 2), embedding_dims=(8, 64)
        )
        assert len(result.points) == 4
        assert 0.5 < result.mean_efficiency <= 1.1
        assert result.min_efficiency <= result.max_efficiency

    def test_recommended_clamped(self, reference_graph):
        result = calibrate_spmm_efficiency(
            reference_graph, core_counts=(1,), embedding_dims=(256,)
        )
        assert result.recommended <= 1.0

    def test_matches_paper_band(self, reference_graph):
        """Calibration should land near the paper's 'within 10-20%' /
        'up to 88% of theoretical peak'."""
        result = calibrate_spmm_efficiency(
            reference_graph, core_counts=(2, 8), embedding_dims=(64, 256)
        )
        assert result.recommended > 0.8

    def test_table_rows_render(self, reference_graph):
        from repro.report.tables import format_table

        result = calibrate_spmm_efficiency(
            reference_graph, core_counts=(1,), embedding_dims=(8,)
        )
        text = format_table(
            ["cores", "K", "DES", "model", "eff"], result.table_rows()
        )
        assert "cores" in text

    def test_empty_grid_rejected(self, reference_graph):
        with pytest.raises(ValueError):
            calibrate_spmm_efficiency(
                reference_graph, core_counts=(), embedding_dims=()
            )


class TestInvariants:
    def test_conservation_passes(self, reference_graph):
        report = check_conservation(reference_graph)
        assert report.passed, report.detail

    def test_monotonicity_passes(self, reference_graph):
        report = check_monotonicity(reference_graph)
        assert report.passed, report.detail

    def test_determinism_passes(self, reference_graph):
        report = check_determinism(reference_graph)
        assert report.passed, report.detail

    def test_run_all(self, reference_graph):
        reports = run_all_checks(reference_graph, embedding_dim=32)
        assert len(reports) == 3
        assert all(r.passed for r in reports), [
            (r.name, r.detail) for r in reports
        ]

    def test_reports_carry_detail(self, reference_graph):
        report = check_monotonicity(
            reference_graph, config=PIUMAConfig(n_cores=1)
        )
        assert "GFLOP/s" in report.detail or not report.passed
