"""Cross-layer integration: functional kernels vs timing models.

The timing models and the functional layer must agree on the *work*
(bytes, FLOPs) even though only the models predict time; and the DES
must agree with the analytical model wherever the analytical model's
assumptions hold.
"""

import numpy as np
import pytest

from repro.core.gcn import GCNConfig, GCNModel
from repro.core.inference import profile_inference
from repro.cpu.config import XeonConfig
from repro.cpu.spmm import CPU_ELEMENT_BYTES, spmm_time
from repro.graphs.datasets import get_dataset
from repro.piuma import PIUMAConfig, simulate_spmm, spmm_model
from repro.piuma.analytical import element_bytes
from repro.sparse.normalize import gcn_normalize
from repro.sparse.spmm import spmm_traffic


@pytest.fixture(scope="module")
def arxiv_small():
    return get_dataset("arxiv").materialize(max_vertices=4096, seed=11)


class TestWorkAgreement:
    def test_functional_flops_match_traffic_model(self, arxiv_small):
        """The instrumented inference reports exactly the Eq. 4 FLOPs
        the timing models charge."""
        adj = gcn_normalize(arxiv_small)
        model = GCNModel(
            adj, GCNConfig(in_dim=16, hidden_dim=32, out_dim=8),
            normalized=True,
        )
        profile = profile_inference(model, model.random_features())
        for layer_profile, layer in zip(profile.layers, model.layers):
            expected = spmm_traffic(adj.n_rows, adj.nnz, layer.in_dim)
            assert layer_profile.spmm_traffic == expected

    def test_cpu_and_piuma_models_price_identical_traffic(self):
        """Same |V|,|E|,K must mean identical raw byte counts across
        the platform models (they differ only in *rates*)."""
        v, e, k = 10_000, 160_000, 64
        cpu_traffic = spmm_traffic(v, e, k, CPU_ELEMENT_BYTES)
        piuma_traffic = spmm_traffic(v, e, k, element_bytes(PIUMAConfig()))
        assert cpu_traffic == piuma_traffic

    def test_des_bytes_match_traffic_model(self, arxiv_small):
        """The DES window moves (approximately) the bytes Eq. 1-3
        prescribe, pro-rated to the window size."""
        cfg = PIUMAConfig(n_cores=2)
        result = simulate_spmm(arxiv_small, 64, cfg, window_edges=8192)
        moved = sum(s.bytes for s in result.tag_stats.values())
        expected = spmm_traffic(
            arxiv_small.n_rows, arxiv_small.nnz, 64, element_bytes(cfg)
        )
        scale = result.window_edges / result.total_edges
        # Window covers a fraction of edges but few whole rows (writes
        # are per-row) -> agreement within 35%.
        assert moved == pytest.approx(expected.total_bytes * scale, rel=0.35)


class TestModelConsistency:
    def test_des_never_beats_analytical_roof_meaningfully(self, arxiv_small):
        """Eq. 5 is a bandwidth roof; the DES may sit at it, not above
        it (beyond window-measurement noise)."""
        for cores in (1, 4):
            cfg = PIUMAConfig(n_cores=cores)
            des = simulate_spmm(arxiv_small, 64, cfg)
            roof = spmm_model(arxiv_small.n_rows, arxiv_small.nnz, 64, cfg)
            assert des.gflops <= roof.gflops * 1.1, cores

    def test_cpu_model_bounded_by_compute_peak(self):
        cfg = XeonConfig()
        est = spmm_time(100_000, 10_000_000, 64, cfg)
        assert est.gflops <= cfg.peak_gflops()

    def test_more_bandwidth_never_slower_des(self, arxiv_small):
        slow = simulate_spmm(
            arxiv_small, 32, PIUMAConfig(dram_bandwidth_scale=0.5)
        )
        fast = simulate_spmm(
            arxiv_small, 32, PIUMAConfig(dram_bandwidth_scale=2.0)
        )
        assert fast.gflops > slow.gflops

    @pytest.mark.slow
    def test_more_latency_never_meaningfully_faster_des(self, arxiv_small):
        base = simulate_spmm(
            arxiv_small, 32, PIUMAConfig(dram_latency_ns=45.0)
        )
        worse = simulate_spmm(
            arxiv_small, 32, PIUMAConfig(dram_latency_ns=720.0)
        )
        assert worse.gflops <= base.gflops * 1.25


class TestEndToEndStory:
    """The paper's narrative arc as one integration test each."""

    def test_products_story(self):
        """products: SpMM-bound on CPU, PIUMA relieves it, dense takes
        over on PIUMA at high K, GPU competitive only at high K."""
        from repro.core.speedup import compare_platforms
        from repro.gpu.config import A100Config
        from repro.workloads.gcn_workload import workload_for

        configs = (XeonConfig(), A100Config(), PIUMAConfig.node())
        low = compare_platforms(workload_for("products", 8), *configs)
        high = compare_platforms(workload_for("products", 256), *configs)
        assert low.breakdowns["cpu"].fraction("spmm") > 0.8
        assert high.breakdowns["piuma"].fraction("dense") > 0.5
        assert low.gcn_speedup("piuma") > high.gcn_speedup("piuma") > 1
        assert low.gcn_speedup("gpu") < high.gcn_speedup("gpu")

    def test_papers_story(self):
        """papers: CPU slow, GPU catastrophic (sampling), PIUMA fine."""
        from repro.core.speedup import compare_platforms
        from repro.gpu.config import A100Config
        from repro.workloads.gcn_workload import workload_for

        c = compare_platforms(
            workload_for("papers", 64),
            XeonConfig(), A100Config(), PIUMAConfig.node(),
        )
        assert c.gcn_speedup("gpu") < 0.1
        assert c.gcn_speedup("piuma") > 2.0
        gpu = c.breakdowns["gpu"]
        assert gpu.fraction("sampling") + gpu.fraction("offload") > 0.95
