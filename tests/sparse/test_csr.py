import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.csr import CSRMatrix


def random_csr(rng, n_rows=12, n_cols=9, nnz=40):
    rows = rng.integers(0, n_rows, nnz)
    cols = rng.integers(0, n_cols, nnz)
    vals = rng.normal(size=nnz)
    return CSRMatrix.from_edges(rows, cols, vals, shape=(n_rows, n_cols))


class TestValidation:
    def test_rejects_bad_indptr_length(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix([0, 1], [0], [1.0], (3, 3))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix([0, 2, 1, 2], [0, 1], [1.0, 1.0], (3, 3))

    def test_rejects_indptr_not_starting_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            CSRMatrix([1, 1, 1, 2], [0], [1.0], (3, 3))

    def test_rejects_indptr_data_mismatch(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix([0, 1, 1, 1], [0, 1], [1.0, 1.0], (3, 3))

    def test_rejects_column_out_of_range(self):
        with pytest.raises(ValueError, match="column index"):
            CSRMatrix([0, 1], [5], [1.0], (1, 3))


class TestBasics:
    def test_identity(self):
        eye = CSRMatrix.identity(4)
        np.testing.assert_allclose(eye.to_dense(), np.eye(4))

    def test_nnz_and_density(self, tiny_csr):
        assert tiny_csr.nnz == 5
        assert tiny_csr.density == 5 / 16

    def test_row_degrees(self, tiny_csr):
        assert list(tiny_csr.row_degrees()) == [1, 2, 0, 2]

    def test_row_access(self, tiny_csr):
        cols, vals = tiny_csr.row(3)
        assert list(cols) == [0, 3]
        assert list(vals) == [4.0, 5.0]

    def test_to_dense(self, tiny_csr):
        expected = np.array(
            [[0, 2, 0, 0], [1, 0, 3, 0], [0, 0, 0, 0], [4, 0, 0, 5]],
            dtype=float,
        )
        np.testing.assert_allclose(tiny_csr.to_dense(), expected)


class TestTransforms:
    def test_transpose_matches_scipy(self, rng):
        m = random_csr(rng)
        ours = m.transpose().to_dense()
        theirs = sp.csr_matrix(m.to_dense()).T.toarray()
        np.testing.assert_allclose(ours, theirs)

    def test_coo_round_trip(self, rng):
        m = random_csr(rng)
        np.testing.assert_allclose(m.to_coo().to_csr().to_dense(), m.to_dense())

    def test_scale_rows(self, tiny_csr):
        scaled = tiny_csr.scale_rows([1.0, 2.0, 3.0, 0.5])
        expected = np.diag([1.0, 2.0, 3.0, 0.5]) @ tiny_csr.to_dense()
        np.testing.assert_allclose(scaled.to_dense(), expected)

    def test_scale_cols(self, tiny_csr):
        scaled = tiny_csr.scale_cols([1.0, 2.0, 3.0, 0.5])
        expected = tiny_csr.to_dense() @ np.diag([1.0, 2.0, 3.0, 0.5])
        np.testing.assert_allclose(scaled.to_dense(), expected)

    def test_scale_rows_rejects_bad_length(self, tiny_csr):
        with pytest.raises(ValueError):
            tiny_csr.scale_rows([1.0])


class TestProducts:
    def test_matvec_matches_dense(self, rng):
        m = random_csr(rng)
        x = rng.normal(size=m.n_cols)
        np.testing.assert_allclose(m.matvec(x), m.to_dense() @ x)

    def test_matvec_rejects_wrong_length(self, tiny_csr):
        with pytest.raises(ValueError):
            tiny_csr.matvec(np.ones(3))

    def test_matmat_matches_scipy(self, rng):
        m = random_csr(rng)
        h = rng.normal(size=(m.n_cols, 5))
        theirs = sp.csr_matrix(m.to_dense()) @ h
        np.testing.assert_allclose(m.matmat(h), theirs)
