import numpy as np
import pytest

from repro.graphs.degree import reuse_distance_proxy
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.reorder import (
    apply_permutation,
    bandwidth,
    bfs_order,
    degree_order,
    random_order,
    rcm_order,
)


class TestCSC:
    def test_round_trip_dense(self, small_rmat):
        csc = CSCMatrix.from_csr(small_rmat)
        np.testing.assert_allclose(csc.to_dense(), small_rmat.to_dense())

    def test_back_to_csr(self, small_rmat):
        back = CSCMatrix.from_csr(small_rmat).to_csr()
        np.testing.assert_allclose(back.to_dense(), small_rmat.to_dense())

    def test_col_access(self, tiny_csr):
        csc = CSCMatrix.from_csr(tiny_csr)
        rows, vals = csc.col(0)
        assert sorted(rows) == [1, 3]
        assert sorted(vals) == [1.0, 4.0]

    def test_col_degrees(self, tiny_csr):
        csc = CSCMatrix.from_csr(tiny_csr)
        assert list(csc.col_degrees()) == [2, 1, 1, 1]

    def test_transpose_matmat(self, small_rmat, rng):
        csc = CSCMatrix.from_csr(small_rmat)
        x = rng.normal(size=(small_rmat.n_rows, 5))
        np.testing.assert_allclose(
            csc.transpose_matmat(x), small_rmat.to_dense().T @ x, atol=1e-9
        )

    def test_transpose_matmat_rejects_bad_shape(self, tiny_csr):
        csc = CSCMatrix.from_csr(tiny_csr)
        with pytest.raises(ValueError):
            csc.transpose_matmat(np.ones((2, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            CSCMatrix([0, 1], [5], [1.0], (3, 1))
        with pytest.raises(ValueError):
            CSCMatrix([0, 2, 1], [0, 0], [1.0, 1.0], (2, 2))


class TestPermutations:
    def test_apply_preserves_structure(self, small_rmat):
        perm = random_order(small_rmat, seed=3)
        permuted = apply_permutation(small_rmat, perm)
        assert permuted.nnz == small_rmat.nnz
        np.testing.assert_array_equal(
            np.sort(permuted.row_degrees()),
            np.sort(small_rmat.row_degrees()),
        )

    def test_apply_relabels_edges(self):
        adj = CSRMatrix.from_edges([0, 1], [1, 2], shape=(3, 3))
        permuted = apply_permutation(adj, [2, 0, 1])
        dense = permuted.to_dense()
        assert dense[2, 0] == 1.0  # edge 0->1 becomes 2->0
        assert dense[0, 1] == 1.0  # edge 1->2 becomes 0->1

    def test_apply_validates(self, small_rmat):
        with pytest.raises(ValueError):
            apply_permutation(small_rmat, [0, 1])
        with pytest.raises(ValueError):
            apply_permutation(
                small_rmat, np.zeros(small_rmat.n_rows, dtype=np.int64)
            )

    def test_bfs_is_permutation(self, small_rmat):
        perm = bfs_order(small_rmat)
        assert sorted(perm) == list(range(small_rmat.n_rows))

    def test_bfs_start_gets_zero(self, small_rmat):
        perm = bfs_order(small_rmat, start=5)
        assert perm[5] == 0

    def test_bfs_validates_start(self, small_rmat):
        with pytest.raises(ValueError):
            bfs_order(small_rmat, start=10**6)

    def test_rcm_reverses_bfs(self, small_rmat):
        b = bfs_order(small_rmat, start=0)
        r = rcm_order(small_rmat, start=0)
        np.testing.assert_array_equal(r, small_rmat.n_rows - 1 - b)

    def test_degree_order_puts_hub_first(self, small_rmat):
        perm = degree_order(small_rmat)
        hub = int(np.argmax(small_rmat.row_degrees()))
        assert perm[hub] == 0

    def test_handles_disconnected_graph(self):
        adj = CSRMatrix.from_edges([0, 1], [1, 0], shape=(4, 4))
        perm = bfs_order(adj)
        assert sorted(perm) == [0, 1, 2, 3]


class TestLocalityEffects:
    def test_rcm_reduces_bandwidth(self, small_rmat):
        """The classic RCM guarantee on a shuffled power-law graph."""
        shuffled = apply_permutation(
            small_rmat, random_order(small_rmat, seed=1)
        )
        ordered = apply_permutation(shuffled, rcm_order(shuffled))
        assert bandwidth(ordered) <= bandwidth(shuffled)

    def test_degree_order_improves_reuse_proxy(self, small_rmat):
        """Hub-first numbering concentrates hot rows: the measured
        reuse proxy (the locality knob's empirical basis) improves over
        a random order under a small window."""
        shuffled = apply_permutation(
            small_rmat, random_order(small_rmat, seed=2)
        )
        ordered = apply_permutation(shuffled, degree_order(shuffled))
        assert (
            reuse_distance_proxy(ordered, window=32)
            >= reuse_distance_proxy(shuffled, window=32)
        )

    def test_bandwidth_empty(self):
        empty = CSRMatrix([0, 0], [], [], (1, 1))
        assert bandwidth(empty) == 0
