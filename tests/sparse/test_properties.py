"""Property-based tests on the sparse substrate (hypothesis)."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse.coo import COOMatrix
from repro.sparse.normalize import gcn_normalize
from repro.sparse.spmm import spmm, spmm_edge_parallel, spmm_vertex_parallel


@st.composite
def coo_matrices(draw, max_dim=12, max_nnz=60):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        arrays(np.int64, nnz, elements=st.integers(0, n_rows - 1))
    )
    cols = draw(
        arrays(np.int64, nnz, elements=st.integers(0, n_cols - 1))
    )
    vals = draw(
        arrays(
            np.float64,
            nnz,
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    return COOMatrix(rows, cols, vals, (n_rows, n_cols))


@st.composite
def square_coo(draw, max_dim=10, max_nnz=50):
    n = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(arrays(np.int64, nnz, elements=st.integers(0, n - 1)))
    cols = draw(arrays(np.int64, nnz, elements=st.integers(0, n - 1)))
    return COOMatrix(rows, cols, None, (n, n))


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_csr_round_trip_preserves_dense(coo):
    np.testing.assert_allclose(coo.to_csr().to_dense(), coo.to_dense(), atol=1e-9)


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_double_transpose_is_identity(coo):
    csr = coo.to_csr()
    np.testing.assert_allclose(
        csr.transpose().transpose().to_dense(), csr.to_dense()
    )


@given(coo_matrices(), st.integers(1, 6), st.integers(1, 9))
@settings(max_examples=40, deadline=None)
def test_parallel_spmm_agrees_with_reference(coo, k, threads):
    csr = coo.to_csr()
    rng = np.random.default_rng(0)
    h = rng.normal(size=(csr.n_cols, k))
    reference = spmm(csr, h)
    vp = spmm_vertex_parallel(csr, h, threads)
    ep = spmm_edge_parallel(csr, h, threads)
    np.testing.assert_allclose(vp.output, reference, atol=1e-9)
    np.testing.assert_allclose(ep.output, reference, atol=1e-9)


@given(coo_matrices(), st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_spmm_matches_scipy(coo, k):
    csr = coo.to_csr()
    rng = np.random.default_rng(1)
    h = rng.normal(size=(csr.n_cols, k))
    oracle = sp.csr_matrix(
        (csr.data, csr.indices, csr.indptr), shape=csr.shape
    ) @ h
    np.testing.assert_allclose(spmm(csr, h), oracle, atol=1e-9)


@given(square_coo())
@settings(max_examples=60, deadline=None)
def test_gcn_normalization_is_symmetric_and_bounded(coo):
    sym = coo.to_csr()
    # Symmetrize so the invariant applies.
    dense = sym.to_dense()
    dense = np.minimum(dense + dense.T, 1.0)
    coo2 = COOMatrix(*np.nonzero(dense), dense[np.nonzero(dense)], dense.shape)
    norm = gcn_normalize(coo2.to_csr()).to_dense()
    np.testing.assert_allclose(norm, norm.T, atol=1e-9)
    assert np.all(np.isfinite(norm))
    # Spectral radius of D^-1/2 (A+I) D^-1/2 is at most 1.
    eigenvalues = np.linalg.eigvalsh(norm)
    assert eigenvalues.max() <= 1.0 + 1e-9
