import numpy as np
import pytest

from repro.sparse.coo import COOMatrix


class TestConstruction:
    def test_infers_shape(self):
        m = COOMatrix([0, 2], [1, 3])
        assert m.shape == (3, 4)

    def test_explicit_shape(self):
        m = COOMatrix([0], [0], shape=(5, 6))
        assert m.shape == (5, 6)

    def test_default_values_are_ones(self):
        m = COOMatrix([0, 1], [1, 0])
        assert np.all(m.vals == 1.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="differ in length"):
            COOMatrix([0, 1], [0])

    def test_rejects_vals_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            COOMatrix([0, 1], [0, 1], vals=[1.0])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="exceed"):
            COOMatrix([5], [0], shape=(3, 3))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            COOMatrix([-1], [0], shape=(3, 3))

    def test_empty(self):
        m = COOMatrix([], [], shape=(3, 3))
        assert m.nnz == 0
        assert np.all(m.to_dense() == 0)


class TestCoalesce:
    def test_sums_duplicates(self):
        m = COOMatrix([0, 0, 1], [1, 1, 0], vals=[2.0, 3.0, 1.0], shape=(2, 2))
        c = m.coalesce()
        assert c.nnz == 2
        dense = c.to_dense()
        assert dense[0, 1] == 5.0
        assert dense[1, 0] == 1.0

    def test_row_major_order(self):
        m = COOMatrix([1, 0, 1], [0, 1, 1], shape=(2, 2))
        c = m.coalesce()
        assert list(c.rows) == [0, 1, 1]
        assert list(c.cols) == [1, 0, 1]

    def test_preserves_dense_equivalent(self, rng):
        rows = rng.integers(0, 10, 50)
        cols = rng.integers(0, 10, 50)
        vals = rng.normal(size=50)
        m = COOMatrix(rows, cols, vals, shape=(10, 10))
        np.testing.assert_allclose(m.coalesce().to_dense(), m.to_dense())


class TestTranspose:
    def test_transpose_swaps(self):
        m = COOMatrix([0], [2], vals=[7.0], shape=(2, 3))
        t = m.transpose()
        assert t.shape == (3, 2)
        assert t.to_dense()[2, 0] == 7.0


class TestToCSR:
    def test_round_trip_dense(self, rng):
        rows = rng.integers(0, 8, 30)
        cols = rng.integers(0, 8, 30)
        vals = rng.normal(size=30)
        m = COOMatrix(rows, cols, vals, shape=(8, 8))
        np.testing.assert_allclose(m.to_csr().to_dense(), m.to_dense())

    def test_empty_rows_have_zero_width(self):
        m = COOMatrix([0, 3], [1, 2], shape=(4, 4))
        csr = m.to_csr()
        assert list(csr.row_degrees()) == [1, 0, 0, 1]
