import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.normalize import add_self_loops, gcn_normalize, row_normalize


def dense_gcn_norm(a, self_loops=True):
    """Oracle: dense D^-1/2 (A+I) D^-1/2."""
    if self_loops:
        a = a + np.eye(a.shape[0])
    d = a.sum(axis=1)
    inv_sqrt = np.where(d > 0, 1.0 / np.sqrt(np.where(d > 0, d, 1)), 0.0)
    return inv_sqrt[:, None] * a * inv_sqrt[None, :]


class TestSelfLoops:
    def test_adds_diagonal(self, tiny_csr):
        looped = add_self_loops(tiny_csr)
        dense = looped.to_dense()
        np.testing.assert_allclose(np.diag(dense), [1.0, 1.0, 1.0, 6.0])

    def test_existing_loop_summed(self):
        m = CSRMatrix([0, 1], [0], [2.0], (1, 1))
        assert add_self_loops(m).to_dense()[0, 0] == 3.0

    def test_rejects_rectangular(self):
        m = CSRMatrix([0, 1], [0], [1.0], (1, 3))
        with pytest.raises(ValueError):
            add_self_loops(m)


class TestGCNNormalize:
    def test_matches_dense_oracle(self, small_rmat):
        ours = gcn_normalize(small_rmat).to_dense()
        oracle = dense_gcn_norm(small_rmat.to_dense())
        np.testing.assert_allclose(ours, oracle, atol=1e-12)

    def test_without_self_loops(self, small_rmat):
        ours = gcn_normalize(small_rmat, self_loops=False).to_dense()
        oracle = dense_gcn_norm(small_rmat.to_dense(), self_loops=False)
        np.testing.assert_allclose(ours, oracle, atol=1e-12)

    def test_isolated_vertices_stay_finite(self):
        # Vertex 2 has no edges at all.
        m = CSRMatrix([0, 1, 2, 2], [1, 0], [1.0, 1.0], (3, 3))
        norm = gcn_normalize(m, self_loops=False)
        assert np.all(np.isfinite(norm.to_dense()))

    def test_symmetric_input_stays_symmetric(self, small_rmat):
        dense = gcn_normalize(small_rmat).to_dense()
        np.testing.assert_allclose(dense, dense.T, atol=1e-12)

    def test_spectral_radius_bounded_by_one(self, small_rmat):
        """D^-1/2 (A+I) D^-1/2 has spectral radius <= 1 for non-negative
        weights (similar to the row-stochastic D^-1 (A+I))."""
        dense = gcn_normalize(small_rmat).to_dense()
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_rejects_rectangular(self):
        m = CSRMatrix([0, 1], [0], [1.0], (1, 3))
        with pytest.raises(ValueError):
            gcn_normalize(m)


class TestRowNormalize:
    def test_rows_sum_to_one(self, small_rmat):
        norm = row_normalize(small_rmat)
        sums = norm.to_dense().sum(axis=1)
        nonzero = small_rmat.row_degrees() > 0
        np.testing.assert_allclose(sums[nonzero], 1.0)
        np.testing.assert_allclose(sums[~nonzero], 0.0)
