"""Property-based tests for vertex reordering (hypothesis).

The load-bearing property: :func:`apply_permutation` is a graph
isomorphism, so SpMM commutes with it — permuting the adjacency and
the feature rows permutes the output rows and nothing else.  The
metamorphic relabel-invariance relation in ``repro.testing`` leans on
exactly this.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse.coo import COOMatrix
from repro.sparse.reorder import (
    apply_permutation,
    bfs_order,
    degree_order,
    random_order,
    rcm_order,
)
from repro.sparse.spmm import spmm


@st.composite
def square_csr(draw, max_dim=10, max_nnz=40):
    n = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(arrays(np.int64, nnz, elements=st.integers(0, n - 1)))
    cols = draw(arrays(np.int64, nnz, elements=st.integers(0, n - 1)))
    vals = draw(arrays(
        np.float64, nnz, elements=st.floats(-8, 8, allow_nan=False)
    ))
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()


@st.composite
def csr_with_perm(draw):
    adj = draw(square_csr())
    seed = draw(st.integers(0, 2**16))
    perm = np.random.default_rng(seed).permutation(adj.n_rows)
    return adj, perm.astype(np.int64)


@given(csr_with_perm())
@settings(max_examples=60, deadline=None)
def test_permutation_round_trip_is_identity(pair):
    adj, perm = pair
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(adj.n_rows, dtype=np.int64)
    back = apply_permutation(apply_permutation(adj, perm), inverse)
    np.testing.assert_allclose(back.to_dense(), adj.to_dense(), atol=1e-12)


@given(csr_with_perm(), st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_spmm_commutes_with_relabeling(pair, k):
    adj, perm = pair
    features = np.random.default_rng(3).standard_normal((adj.n_rows, k))
    relabeled = apply_permutation(adj, perm)
    permuted_features = np.empty_like(features)
    permuted_features[perm] = features
    # Row perm[i] of the relabeled product is row i of the original.
    np.testing.assert_allclose(
        spmm(relabeled, permuted_features)[perm],
        spmm(adj, features),
        atol=1e-9,
    )


@given(csr_with_perm())
@settings(max_examples=60, deadline=None)
def test_relabeling_preserves_degree_multiset(pair):
    adj, perm = pair
    relabeled = apply_permutation(adj, perm)
    assert sorted(relabeled.row_degrees()) == sorted(adj.row_degrees())
    assert relabeled.nnz == adj.nnz


@given(square_csr())
@settings(max_examples=40, deadline=None)
def test_orderings_are_valid_permutations(adj):
    n = adj.n_rows
    for perm in (
        bfs_order(adj),
        rcm_order(adj),
        degree_order(adj),
        degree_order(adj, descending=False),
        random_order(adj, seed=5),
    ):
        assert sorted(perm) == list(range(n))


@given(square_csr())
@settings(max_examples=30, deadline=None)
def test_identity_permutation_is_noop(adj):
    identity = np.arange(adj.n_rows, dtype=np.int64)
    np.testing.assert_allclose(
        apply_permutation(adj, identity).to_dense(), adj.to_dense()
    )
