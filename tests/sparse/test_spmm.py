import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.csr import CSRMatrix
from repro.sparse.spmm import (
    partition_edges,
    partition_rows,
    spmm,
    spmm_edge_parallel,
    spmm_traffic,
    spmm_vertex_parallel,
)


def scipy_spmm(adj, h):
    return sp.csr_matrix(
        (adj.data, adj.indices, adj.indptr), shape=adj.shape
    ) @ h


class TestReferenceSpMM:
    def test_matches_scipy(self, small_rmat, rng):
        h = rng.normal(size=(small_rmat.n_cols, 16))
        np.testing.assert_allclose(
            spmm(small_rmat, h), scipy_spmm(small_rmat, h)
        )

    def test_rejects_bad_shape(self, tiny_csr):
        with pytest.raises(ValueError):
            spmm(tiny_csr, np.ones((3, 2)))

    def test_empty_rows_yield_zero(self, tiny_csr, rng):
        h = rng.normal(size=(4, 3))
        out = spmm(tiny_csr, h)
        np.testing.assert_allclose(out[2], 0.0)


class TestPartitioning:
    def test_rows_cover_everything(self, small_rmat):
        chunks = partition_rows(small_rmat, 7)
        assert chunks[0][0] == 0
        assert chunks[-1][1] == small_rmat.n_rows
        for (_, end), (start, _) in zip(chunks, chunks[1:]):
            assert end == start

    def test_edges_cover_everything(self, small_rmat):
        chunks = partition_edges(small_rmat, 7)
        assert chunks[0][0] == 0
        assert chunks[-1][1] == small_rmat.nnz

    def test_edge_chunks_balanced(self, small_rmat):
        chunks = partition_edges(small_rmat, 8)
        sizes = [end - start for start, end, _ in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_first_row_owns_start_edge(self, small_rmat):
        for start, _end, first_row in partition_edges(small_rmat, 5):
            assert small_rmat.indptr[first_row] <= start
            if first_row + 1 <= small_rmat.n_rows:
                assert start < small_rmat.indptr[first_row + 1] or start == small_rmat.nnz

    def test_rejects_zero_threads(self, small_rmat):
        with pytest.raises(ValueError):
            partition_rows(small_rmat, 0)
        with pytest.raises(ValueError):
            partition_edges(small_rmat, 0)


class TestParallelVariants:
    @pytest.mark.parametrize("threads", [1, 2, 3, 8, 16])
    def test_vertex_parallel_correct(self, small_rmat, rng, threads):
        h = rng.normal(size=(small_rmat.n_cols, 8))
        result = spmm_vertex_parallel(small_rmat, h, threads)
        np.testing.assert_allclose(result.output, spmm(small_rmat, h))

    @pytest.mark.parametrize("threads", [1, 2, 3, 8, 16])
    def test_edge_parallel_correct(self, small_rmat, rng, threads):
        h = rng.normal(size=(small_rmat.n_cols, 8))
        result = spmm_edge_parallel(small_rmat, h, threads)
        np.testing.assert_allclose(result.output, spmm(small_rmat, h))

    def test_vertex_parallel_no_atomics(self, small_rmat, rng):
        h = rng.normal(size=(small_rmat.n_cols, 4))
        assert spmm_vertex_parallel(small_rmat, h, 8).atomic_writes == 0

    def test_edge_parallel_needs_atomics_on_skewed_graph(self, small_rmat, rng):
        h = rng.normal(size=(small_rmat.n_cols, 4))
        result = spmm_edge_parallel(small_rmat, h, 16)
        assert result.atomic_writes > 0
        assert result.binary_searches == 16

    def test_edge_parallel_better_balanced(self, small_rmat, rng):
        """Algorithm 2's motivation: edge partition balances skewed graphs."""
        h = rng.normal(size=(small_rmat.n_cols, 4))
        vp = spmm_vertex_parallel(small_rmat, h, 16)
        ep = spmm_edge_parallel(small_rmat, h, 16)
        imbalance = lambda e: e.max() / max(e.mean(), 1e-12)
        assert imbalance(ep.edges_per_thread) <= imbalance(vp.edges_per_thread)

    def test_edge_counts_sum_to_nnz(self, small_rmat, rng):
        h = rng.normal(size=(small_rmat.n_cols, 4))
        for result in (
            spmm_vertex_parallel(small_rmat, h, 5),
            spmm_edge_parallel(small_rmat, h, 5),
        ):
            assert result.edges_per_thread.sum() == small_rmat.nnz


class TestTrafficModel:
    def test_equation_values(self):
        """Equations 1-4 with 4-byte elements, hand-computed."""
        t = spmm_traffic(
            n_vertices=10,
            n_edges=30,
            embedding_dim=8,
            element_bytes={"row": 4, "col": 4, "nnz": 4, "feature": 4},
        )
        assert t.csr_bytes == 11 * 4 + 30 * 8  # (|V|+1)*B_R + |E|*(B_C+B_N)
        assert t.feature_bytes == 8 * 30 * 4  # K*|E|*B_F
        assert t.write_bytes == 8 * 10 * 4  # K*|V|*B_F
        assert t.flops == 2 * 30 * 8  # 2*|E|*K

    def test_low_arithmetic_intensity(self):
        """SpMM is bandwidth-bound: < 1 FLOP per byte for float32."""
        t = spmm_traffic(
            1000, 16000, 256,
            element_bytes={"row": 4, "col": 4, "nnz": 4, "feature": 4},
        )
        assert t.arithmetic_intensity < 1.0

    def test_totals_consistent(self):
        t = spmm_traffic(100, 500, 16)
        assert t.read_bytes == t.csr_bytes + t.feature_bytes
        assert t.total_bytes == t.read_bytes + t.write_bytes

    def test_traffic_matches_functional_flops(self, small_rmat, rng):
        """The model's FLOP count equals the functional kernel's MACs."""
        k = 8
        t = spmm_traffic(small_rmat.n_rows, small_rmat.nnz, k)
        # One multiply + one add per (edge, feature) pair.
        assert t.flops == 2 * small_rmat.nnz * k
