import pytest

from repro.gpu.config import A100Config
from repro.gpu.sampling import (
    SamplingProfile,
    measure_receptive_expansion,
    sampled_run_cost,
)
from repro.graphs.rmat import RMATParams, rmat_graph


@pytest.fixture(scope="module")
def adj():
    return rmat_graph(RMATParams(scale=11, edge_factor=16), seed=6,
                      symmetric=True)


class TestExpansionMeasurement:
    def test_fractions_bounded(self, adj):
        profile = measure_receptive_expansion(adj, 32, 2, n_probes=3)
        assert 0 < profile.mean_frontier_fraction <= 1
        assert profile.mean_edges_fraction > 0

    def test_deeper_models_expand_more(self, adj):
        shallow = measure_receptive_expansion(adj, 32, 1, n_probes=3)
        deep = measure_receptive_expansion(adj, 32, 3, n_probes=3)
        assert deep.mean_frontier_fraction > shallow.mean_frontier_fraction

    def test_neighborhood_explosion(self, adj):
        """Full-neighborhood sampling on a power-law graph explodes: a
        tiny batch's 3-hop field covers most of the graph — the
        structural reason `papers` is hopeless on GPU."""
        profile = measure_receptive_expansion(adj, 16, 3, n_probes=3)
        assert profile.mean_frontier_fraction > 0.5

    def test_bigger_batches_bigger_fields(self, adj):
        small = measure_receptive_expansion(adj, 4, 2, n_probes=3)
        large = measure_receptive_expansion(adj, 128, 2, n_probes=3)
        assert (large.mean_frontier_fraction
                >= small.mean_frontier_fraction)

    def test_validation(self, adj):
        with pytest.raises(ValueError):
            measure_receptive_expansion(adj, 0, 2)
        with pytest.raises(ValueError):
            measure_receptive_expansion(adj, 4, 2, n_probes=0)


class TestSampledRunCost:
    def test_batch_count(self):
        profile = SamplingProfile(
            batch_size=1000, n_layers=3,
            mean_frontier_fraction=0.5, mean_edges_fraction=0.4,
        )
        estimate = sampled_run_cost(10_500, 1_000_000, 64, profile,
                                    A100Config())
        assert estimate.n_batches == 11

    def test_explosion_makes_host_cost_superlinear(self):
        """If every batch touches 80% of the edges, total host work is
        ~0.8 * n_batches * |E| * K — far beyond one full-graph pass."""
        config = A100Config()
        exploded = SamplingProfile(1000, 3, 0.9, 0.8)
        contained = SamplingProfile(1000, 3, 0.05, 0.01)
        big = sampled_run_cost(1_000_000, 50_000_000, 64, exploded, config)
        small = sampled_run_cost(1_000_000, 50_000_000, 64, contained,
                                 config)
        assert big.host_ns > 20 * small.host_ns

    def test_sampling_slower_than_offload(self):
        """Host gather is the slower of the two stages (Fig 4: sampling
        > offload for `papers`)."""
        profile = SamplingProfile(1000, 3, 0.5, 0.3)
        estimate = sampled_run_cost(10**6, 10**7, 64, profile, A100Config())
        assert estimate.sampling_ns > estimate.offload_ns

    def test_validation(self):
        profile = SamplingProfile(10, 2, 0.1, 0.1)
        with pytest.raises(ValueError):
            sampled_run_cost(100, 1000, 0, profile, A100Config())
