import pytest

from repro.gpu import (
    A100Config,
    fits_on_gpu,
    gpu_dense_mm_time,
    gpu_gcn_breakdown,
    gpu_spmm_time,
    workload_footprint,
)
from repro.workloads.gcn_workload import workload_for


@pytest.fixture
def cfg():
    return A100Config()


class TestFootprint:
    def test_components_positive(self):
        fp = workload_footprint(workload_for("arxiv", 64))
        assert fp.adjacency > 0 and fp.features > 0
        assert fp.activations > 0 and fp.weights > 0
        assert fp.total == (
            fp.adjacency + fp.features + fp.activations + fp.weights
        )

    def test_all_ogb_graphs_fit_except_papers(self, cfg):
        """Fig 4: 'All graphs except papers fit on a single-node GPU'."""
        for name in ("ddi", "proteins", "arxiv", "collab", "ppa",
                     "mag", "products", "citation2"):
            assert fits_on_gpu(workload_for(name, 256), cfg), name
        assert not fits_on_gpu(workload_for("papers", 8), cfg)

    def test_footprint_grows_with_k(self):
        small = workload_footprint(workload_for("products", 8)).total
        large = workload_footprint(workload_for("products", 256)).total
        assert large > small


class TestKernels:
    def test_l2_resident_spmm_fast(self, cfg):
        """ddi's feature matrix fits the 40 MB L2 — the Fig 9 reason the
        GPU wins SpMM on small graphs with good locality."""
        small = gpu_spmm_time(4_267, 1_339_156, 64, cfg)
        assert small.bound == "l2"

    def test_big_graph_hbm_bound(self, cfg):
        big = gpu_spmm_time(2_449_029, 64_308_169, 256, cfg)
        assert big.bound == "hbm"

    def test_locality_scales_spmm_bandwidth(self, cfg):
        lo = gpu_spmm_time(2_449_029, 64_308_169, 256, cfg, locality=0.05)
        hi = gpu_spmm_time(2_449_029, 64_308_169, 256, cfg, locality=0.8)
        assert hi.time_ns < lo.time_ns

    def test_dense_roofline(self, cfg):
        est = gpu_dense_mm_time(1_000_000, 256, 256, cfg)
        assert est.bound == "compute"
        assert est.gflops <= cfg.peak_fp32_gflops

    def test_dense_rejects_bad_dims(self, cfg):
        with pytest.raises(ValueError):
            gpu_dense_mm_time(0, 1, 1, cfg)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            A100Config(memory_gb=0)
        with pytest.raises(ValueError):
            A100Config().spmm_bandwidth(1.5)


class TestFig4Shapes:
    def test_offload_dominates_fitting_graphs_small_k(self, cfg):
        """'the clear performance bottleneck for GPU was the offload
        time' for non-sampled workloads."""
        for name in ("arxiv", "collab", "products"):
            b = gpu_gcn_breakdown(workload_for(name, 8), cfg)
            assert b.fraction("offload") > 0.45, name
            assert b.sampling == 0.0

    def test_kernel_share_grows_with_k(self, cfg):
        """Offloaded volume is fixed; hidden-layer compute is not."""
        small = gpu_gcn_breakdown(workload_for("products", 8), cfg)
        large = gpu_gcn_breakdown(workload_for("products", 256), cfg)
        assert large.fraction("offload") < small.fraction("offload")
        assert large.fraction("dense") > small.fraction("dense")

    def test_papers_sampling_dominated(self, cfg):
        """'more than 75% of the execution time was spent sampling on
        CPU', and sampling+offload >99%."""
        b = gpu_gcn_breakdown(workload_for("papers", 64), cfg)
        assert b.fraction("sampling") > 0.6
        assert b.fraction("sampling") + b.fraction("offload") > 0.95

    def test_locality_defaults_from_dataset(self, cfg):
        auto = gpu_gcn_breakdown(workload_for("power-16", 64), cfg)
        manual = gpu_gcn_breakdown(
            workload_for("power-16", 64), cfg, locality=0.05
        )
        assert auto.total == manual.total
