import pytest

from repro.workloads.gcn_workload import GCNWorkload, workload_for
from repro.workloads.sweeps import (
    BANDWIDTH_SWEEP,
    CORE_SWEEP,
    EMBEDDING_SWEEP,
    LATENCY_SWEEP_NS,
    THREADS_PER_MTP_SWEEP,
    geometric_sweep,
)


class TestWorkloadFor:
    def test_uses_dataset_feature_dim(self):
        w = workload_for("arxiv", hidden_dim=64)
        assert w.config.in_dim == 128
        assert w.config.hidden_dim == 64
        assert w.config.n_layers == 3

    def test_layer_shapes_use_normalized_edges(self):
        w = workload_for("arxiv", hidden_dim=64)
        shapes = w.layer_shapes()
        assert all(
            s.n_edges == w.dataset.n_edges + w.dataset.n_vertices
            for s in shapes
        )

    def test_full_scale_sizes(self):
        w = workload_for("papers", hidden_dim=256)
        assert w.n_vertices == 111_059_956

    def test_power_dataset(self):
        w = workload_for("power-16", hidden_dim=8)
        assert w.n_vertices == 65536

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            workload_for("nonexistent", hidden_dim=8)


class TestSweeps:
    def test_embedding_sweep_is_paper_grid(self):
        assert EMBEDDING_SWEEP == (8, 16, 32, 64, 128, 256)

    def test_latency_sweep_matches_fig7(self):
        assert LATENCY_SWEEP_NS[0] == 45
        assert LATENCY_SWEEP_NS[-1] == 720

    def test_threads_sweep(self):
        assert THREADS_PER_MTP_SWEEP == (1, 2, 4, 8, 16)

    def test_geometric_inclusive(self):
        assert geometric_sweep(8, 256) == (8, 16, 32, 64, 128, 256)

    def test_geometric_custom_factor(self):
        assert geometric_sweep(1, 27, factor=3) == (1, 3, 9, 27)

    def test_geometric_rejects_bad_args(self):
        with pytest.raises(ValueError):
            geometric_sweep(0, 10)
        with pytest.raises(ValueError):
            geometric_sweep(10, 5)
        with pytest.raises(ValueError):
            geometric_sweep(1, 10, factor=1)

    def test_core_and_bandwidth_grids(self):
        assert CORE_SWEEP[-1] == 32
        assert 1.0 in BANDWIDTH_SWEEP
