import pytest

from repro.piuma.config import PIUMAConfig
from repro.piuma.gcn import gcn_breakdown as piuma_gcn_breakdown
from repro.workloads.gcn_workload import sage_workload_for, workload_for


class TestSAGEWorkload:
    def test_spmm_dims_match_gcn(self):
        gcn = workload_for("arxiv", 64).layer_shapes()
        sage = sage_workload_for("arxiv", 64).layer_shapes()
        assert [s.in_dim for s in sage] == [s.in_dim for s in gcn]
        assert [s.n_edges for s in sage] == [s.n_edges for s in gcn]

    def test_dense_input_doubled(self):
        shapes = sage_workload_for("arxiv", 64).layer_shapes()
        for shape in shapes:
            assert shape.update_in_dim == 2 * shape.in_dim

    def test_gcn_update_defaults_to_in_dim(self):
        shapes = workload_for("arxiv", 64).layer_shapes()
        for shape in shapes:
            assert shape.update_in_dim == shape.in_dim

    def test_sage_worsens_piuma_dense_bottleneck(self):
        """Section VI quantified: the concatenated update makes SAGE
        strictly more dense-bound than GCN on PIUMA."""
        node = PIUMAConfig.node()
        gcn = piuma_gcn_breakdown(workload_for("products", 128), node)
        sage = piuma_gcn_breakdown(sage_workload_for("products", 128), node)
        assert sage.fraction("dense") > gcn.fraction("dense")
        assert sage.spmm == pytest.approx(gcn.spmm)
        assert sage.dense == pytest.approx(2 * gcn.dense, rel=0.05)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            sage_workload_for("reddit", 8)
