import pytest

from repro.graphs.datasets import (
    OGB_TABLE_I,
    get_dataset,
    list_datasets,
    power_graph_spec,
)


class TestTableI:
    def test_nine_datasets(self):
        assert len(OGB_TABLE_I) == 9

    def test_exact_paper_counts(self):
        """Spot-check Table I values verbatim from the paper."""
        products = get_dataset("products")
        assert products.n_vertices == 2_449_029
        assert products.n_edges == 61_859_140
        papers = get_dataset("papers")
        assert papers.n_vertices == 111_059_956
        assert papers.n_edges == 1_615_685_872
        ddi = get_dataset("ddi")
        assert ddi.n_vertices == 4_267
        assert ddi.n_edges == 1_334_889

    def test_presentation_order(self):
        assert list_datasets() == [
            "ddi", "proteins", "arxiv", "collab", "ppa",
            "mag", "products", "citation2", "papers",
        ]

    def test_density_definition(self):
        spec = get_dataset("arxiv")
        assert spec.density == pytest.approx(
            spec.n_edges / spec.n_vertices**2
        )

    def test_ddi_is_densest(self):
        """ddi is tiny but extremely dense — the paper calls it out."""
        densities = {s.name: s.density for s in OGB_TABLE_I}
        assert max(densities, key=densities.get) == "ddi"

    def test_tasks_are_valid(self):
        assert {s.task for s in OGB_TABLE_I} == {"node", "link"}


class TestLookup:
    def test_power_names(self):
        spec = get_dataset("power-16")
        assert spec.n_vertices == 1 << 16
        assert spec.n_edges == 16 * (1 << 16)

    def test_power_22(self):
        assert get_dataset("power-22").n_vertices == 1 << 22

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_dataset("reddit")

    def test_bad_power_suffix(self):
        with pytest.raises(KeyError):
            get_dataset("power-xl")

    def test_list_includes_power(self):
        names = list_datasets(include_power=True)
        assert "power-16" in names and "power-22" in names


class TestMaterialize:
    def test_full_size_small_graph(self):
        g = get_dataset("ddi").materialize(seed=0)
        assert g.shape == (4_267, 4_267)
        # Coalescing trims duplicates; structure should stay dense-ish.
        assert g.nnz > 0.3 * 1_334_889

    def test_downscaled(self):
        spec = get_dataset("products")
        g = spec.materialize(max_vertices=5000, seed=0)
        assert g.shape == (5000, 5000)
        # Average degree approximately preserved (within coalescing loss).
        assert g.nnz / 5000 > 0.4 * spec.avg_degree

    def test_downscale_ignored_when_bigger(self):
        spec = get_dataset("ddi")
        g = spec.materialize(max_vertices=10_000_000, seed=0)
        assert g.shape == (4_267, 4_267)

    def test_deterministic(self):
        spec = power_graph_spec(8)
        g1 = spec.materialize(seed=9)
        g2 = spec.materialize(seed=9)
        assert g1.nnz == g2.nnz
