import numpy as np
import pytest

from repro.graphs.partition import (
    block_vertex_partition,
    evaluate_partition,
)
from repro.graphs.rmat import RMATParams, rmat_graph


class TestBlockPartition:
    def test_covers_all_vertices(self):
        part = block_vertex_partition(100, 7)
        assert part.shape == (100,)
        assert set(part) == set(range(7))

    def test_contiguous(self):
        part = block_vertex_partition(10, 3)
        assert np.all(np.diff(part) >= 0)

    def test_single_part(self):
        assert np.all(block_vertex_partition(5, 1) == 0)

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            block_vertex_partition(5, 0)


class TestEvaluate:
    def test_single_partition_has_no_cut(self, small_rmat):
        part = np.zeros(small_rmat.n_rows, dtype=np.int64)
        report = evaluate_partition(small_rmat, part)
        assert report.edge_cut == 0
        assert report.replication_factor == 1.0

    def test_cut_grows_with_parts(self, small_rmat):
        cuts = []
        for p in (2, 4, 8):
            part = block_vertex_partition(small_rmat.n_rows, p)
            cuts.append(evaluate_partition(small_rmat, part).edge_cut)
        assert cuts[0] <= cuts[1] <= cuts[2]

    def test_cut_bounded_by_edges(self, small_rmat):
        part = block_vertex_partition(small_rmat.n_rows, 8)
        report = evaluate_partition(small_rmat, part)
        assert 0 < report.edge_cut <= small_rmat.nnz

    def test_balance_at_least_one(self, small_rmat):
        part = block_vertex_partition(small_rmat.n_rows, 4)
        assert evaluate_partition(small_rmat, part).balance >= 1.0

    def test_rejects_wrong_length(self, small_rmat):
        with pytest.raises(ValueError):
            evaluate_partition(small_rmat, np.zeros(3, dtype=np.int64))
