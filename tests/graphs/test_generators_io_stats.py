import numpy as np
import pytest

from repro.graphs.degree import degree_stats
from repro.graphs.generators import (
    barabasi_albert,
    community_features,
    erdos_renyi,
    stochastic_block_model,
)
from repro.graphs.io import (
    load_edge_list,
    load_npz,
    save_edge_list,
    save_npz,
)
from repro.graphs.stats import (
    clustering_coefficient,
    connected_components,
    largest_component_fraction,
)
from repro.sparse.csr import CSRMatrix


class TestErdosRenyi:
    def test_size_and_symmetry(self):
        g = erdos_renyi(500, avg_degree=8, seed=1)
        assert g.shape == (500, 500)
        dense = g.to_dense()
        np.testing.assert_allclose(dense, dense.T)

    def test_near_uniform_degrees(self):
        g = erdos_renyi(2000, avg_degree=16, seed=2)
        stats = degree_stats(g)
        assert stats.gini < 0.25  # uniform-ish

    def test_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 4)
        with pytest.raises(ValueError):
            erdos_renyi(10, 0)


class TestBarabasiAlbert:
    def test_heavy_tail(self):
        ba = barabasi_albert(2000, attach=4, seed=3)
        er = erdos_renyi(2000, avg_degree=4, seed=3)
        assert degree_stats(ba).gini > degree_stats(er).gini
        assert degree_stats(ba).maximum > degree_stats(er).maximum

    def test_connected(self):
        g = barabasi_albert(300, attach=2, seed=4)
        assert largest_component_fraction(g) == 1.0

    def test_symmetric(self):
        g = barabasi_albert(100, attach=3, seed=5)
        dense = g.to_dense()
        np.testing.assert_allclose(dense, dense.T)

    def test_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(1, attach=2)
        with pytest.raises(ValueError):
            barabasi_albert(10, attach=0)


class TestSBM:
    def test_returns_labels(self):
        adj, labels = stochastic_block_model(400, 4, avg_degree=10, seed=6)
        assert adj.shape == (400, 400)
        assert labels.shape == (400,)
        assert set(labels) <= set(range(4))

    def test_intra_block_edges_dominate(self):
        adj, labels = stochastic_block_model(
            600, 3, avg_degree=12, p_in=0.9, seed=7
        )
        rows = np.repeat(np.arange(600), adj.row_degrees())
        same = labels[rows] == labels[adj.indices]
        assert same.mean() > 0.7

    def test_p_in_zero_mixes(self):
        adj, labels = stochastic_block_model(
            600, 3, avg_degree=12, p_in=0.0, seed=8
        )
        rows = np.repeat(np.arange(600), adj.row_degrees())
        same = labels[rows] == labels[adj.indices]
        assert same.mean() < 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            stochastic_block_model(10, 0, 4)
        with pytest.raises(ValueError):
            stochastic_block_model(10, 3, 4, p_in=2.0)

    def test_community_features_correlate(self):
        labels = np.array([0] * 50 + [1] * 50)
        x = community_features(labels, 8, noise=0.1, seed=0)
        mean0, mean1 = x[:50].mean(axis=0), x[50:].mean(axis=0)
        assert np.linalg.norm(mean0 - mean1) > 1.0

    def test_community_features_validation(self):
        with pytest.raises(ValueError):
            community_features(np.zeros(5, dtype=np.int64), 0)


class TestIO:
    def test_npz_round_trip(self, small_rmat, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(small_rmat, path)
        loaded = load_npz(path)
        np.testing.assert_array_equal(loaded.indptr, small_rmat.indptr)
        np.testing.assert_array_equal(loaded.indices, small_rmat.indices)
        np.testing.assert_allclose(loaded.data, small_rmat.data)

    def test_npz_rejects_foreign_archives(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError):
            load_npz(path)

    def test_edge_list_round_trip(self, tiny_csr, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(tiny_csr, path, weights=True)
        loaded = load_edge_list(path)
        np.testing.assert_allclose(loaded.to_dense(), tiny_csr.to_dense())

    def test_edge_list_unweighted(self, tiny_csr, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(tiny_csr, path, weights=False)
        loaded = load_edge_list(path)
        assert loaded.nnz == tiny_csr.nnz
        assert np.all(loaded.data == 1.0)

    def test_edge_list_header_preserves_shape(self, tmp_path):
        adj = CSRMatrix.from_edges([0], [1], shape=(10, 10))
        path = tmp_path / "g.txt"
        save_edge_list(adj, path)
        assert load_edge_list(path).shape == (10, 10)

    def test_edge_list_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            load_edge_list(path)


class TestStats:
    def test_components_two_islands(self):
        adj = CSRMatrix.from_edges([0, 1, 2, 3], [1, 0, 3, 2], shape=(4, 4))
        labels, n = connected_components(adj)
        assert n == 2
        assert labels[0] == labels[1] != labels[2]

    def test_isolated_vertices_are_components(self):
        adj = CSRMatrix([0, 0, 0, 0], [], [], (3, 3))
        _labels, n = connected_components(adj)
        assert n == 3

    def test_directed_edges_treated_undirected(self):
        adj = CSRMatrix.from_edges([0], [1], shape=(2, 2))
        _labels, n = connected_components(adj)
        assert n == 1

    def test_triangle_clustering_is_one(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        src, dst = zip(*edges)
        adj = CSRMatrix.from_edges(src, dst, shape=(3, 3))
        assert clustering_coefficient(adj) == pytest.approx(1.0)

    def test_star_clustering_is_zero(self):
        adj = CSRMatrix.from_edges([0, 0, 0], [1, 2, 3], shape=(4, 4))
        assert clustering_coefficient(adj) == 0.0

    def test_sbm_more_clustered_than_er(self):
        sbm, _ = stochastic_block_model(300, 6, avg_degree=12, seed=1)
        er = erdos_renyi(300, avg_degree=12, seed=1)
        assert (clustering_coefficient(sbm, sample=60)
                > clustering_coefficient(er, sample=60))

    def test_sampled_clustering_bounded(self, small_rmat):
        c = clustering_coefficient(small_rmat, sample=50)
        assert 0.0 <= c <= 1.0
