import numpy as np

from repro.graphs.degree import degree_stats, gini_coefficient, reuse_distance_proxy
from repro.graphs.rmat import GRAPH500, UNIFORM, RMATParams, rmat_graph
from repro.sparse.csr import CSRMatrix


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == 0.0

    def test_concentrated_is_high(self):
        assert gini_coefficient([0, 0, 0, 100]) > 0.7

    def test_empty_is_zero(self):
        assert gini_coefficient([]) == 0.0

    def test_all_zero_is_zero(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_bounded(self):
        rng = np.random.default_rng(0)
        g = gini_coefficient(rng.exponential(size=500))
        assert 0.0 <= g <= 1.0


class TestDegreeStats:
    def test_basic_counts(self, tiny_csr):
        s = degree_stats(tiny_csr)
        assert s.n_vertices == 4
        assert s.n_edges == 5
        assert s.mean == 5 / 4
        assert s.maximum == 2

    def test_skewed_rmat_more_skewed_than_uniform(self):
        skew = degree_stats(rmat_graph(RMATParams(10, 16, GRAPH500), seed=0))
        flat = degree_stats(rmat_graph(RMATParams(10, 16, UNIFORM), seed=0))
        assert skew.gini > flat.gini
        assert skew.top1pct_share > flat.top1pct_share

    def test_empty_graph(self):
        g = CSRMatrix([0, 0], [], [], (1, 1))
        s = degree_stats(g)
        assert s.n_edges == 0
        assert s.top1pct_share == 0.0


class TestReuseProxy:
    def test_empty_graph_zero(self):
        g = CSRMatrix([0, 0], [], [], (1, 1))
        assert reuse_distance_proxy(g) == 0.0

    def test_full_reuse_when_single_target(self):
        # Every edge points at vertex 0: all reads after the first hit.
        g = CSRMatrix([0, 3, 6], [0, 0, 0, 0, 0, 0], np.ones(6), (2, 6))
        assert reuse_distance_proxy(g, window=10) == 5 / 6

    def test_no_reuse_distinct_targets(self):
        g = CSRMatrix([0, 3], [0, 1, 2], np.ones(3), (1, 3))
        assert reuse_distance_proxy(g, window=10) == 0.0

    def test_bounded_zero_one(self, small_rmat):
        p = reuse_distance_proxy(small_rmat, window=64)
        assert 0.0 <= p <= 1.0

    def test_larger_window_never_lowers_reuse(self, small_rmat):
        small = reuse_distance_proxy(small_rmat, window=16)
        large = reuse_distance_proxy(small_rmat, window=4096)
        assert large >= small


class TestWindowSpan:
    def test_ordering_sensitivity(self):
        """RCM confines windows to a narrow id band; a random shuffle
        touches the whole range — the metric reordering exists to move."""
        from repro.graphs.degree import window_span_fraction
        from repro.graphs.rmat import RMATParams, rmat_graph
        from repro.sparse.reorder import (
            apply_permutation,
            random_order,
            rcm_order,
        )

        adj = rmat_graph(RMATParams(scale=13, edge_factor=8), seed=0)
        shuffled = apply_permutation(adj, random_order(adj, seed=1))
        ordered = apply_permutation(shuffled, rcm_order(shuffled))
        span_shuffled = window_span_fraction(shuffled, window=2048)
        span_ordered = window_span_fraction(ordered, window=2048)
        assert span_ordered < 0.7 * span_shuffled

    def test_bounded(self, small_rmat):
        from repro.graphs.degree import window_span_fraction

        assert 0.0 <= window_span_fraction(small_rmat, window=128) <= 1.0

    def test_empty_graph(self):
        from repro.graphs.degree import window_span_fraction
        from repro.sparse.csr import CSRMatrix

        empty = CSRMatrix([0, 0], [], [], (1, 1))
        assert window_span_fraction(empty) == 0.0
