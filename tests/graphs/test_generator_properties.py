"""Property-based tests on the graph generators and reorderings."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    community_features,
    erdos_renyi,
    stochastic_block_model,
)
from repro.graphs.rmat import RMATParams, rmat_graph
from repro.sparse.reorder import apply_permutation, bfs_order, random_order


@given(
    st.integers(2, 200),      # vertices
    st.floats(0.5, 8.0),      # degree
    st.integers(0, 10**6),    # seed
)
@settings(max_examples=40, deadline=None)
def test_erdos_renyi_always_valid_and_symmetric(n, degree, seed):
    g = erdos_renyi(n, degree, seed=seed)
    assert g.shape == (n, n)
    assert g.indices.size == 0 or g.indices.max() < n
    dense = g.to_dense()
    np.testing.assert_allclose(dense, dense.T)


@given(
    st.integers(4, 120),
    st.integers(1, 4),
    st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_sbm_labels_consistent(n, blocks, seed):
    adj, labels = stochastic_block_model(n, blocks, avg_degree=4, seed=seed)
    assert labels.shape == (n,)
    assert 0 <= labels.min() and labels.max() < blocks
    assert adj.shape == (n, n)


@given(st.integers(1, 5), st.integers(1, 16), st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_community_features_shape(blocks, dim, seed):
    labels = np.arange(blocks * 3) % blocks
    x = community_features(labels, dim, seed=seed)
    assert x.shape == (blocks * 3, dim)
    assert np.isfinite(x).all()


@given(st.integers(2, 9), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_permutations_preserve_isomorphism_invariants(scale, seed):
    g = rmat_graph(RMATParams(scale=scale, edge_factor=4), seed=seed)
    perm = random_order(g, seed=seed + 1)
    permuted = apply_permutation(g, perm)
    assert permuted.nnz == g.nnz
    np.testing.assert_array_equal(
        np.sort(permuted.row_degrees()), np.sort(g.row_degrees())
    )
    np.testing.assert_allclose(
        np.sort(permuted.data), np.sort(g.data)
    )


@given(st.integers(2, 9), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_bfs_order_is_always_a_permutation(scale, seed):
    g = rmat_graph(RMATParams(scale=scale, edge_factor=3), seed=seed)
    perm = bfs_order(g)
    assert np.array_equal(np.sort(perm), np.arange(g.n_rows))


@given(st.integers(2, 9), st.integers(1, 4), st.integers(0, 10**5))
@settings(max_examples=25, deadline=None)
def test_gcn_forward_finite_on_generated_graphs(scale, k, seed):
    """Any generated graph runs through normalization + GCN safely."""
    from repro.core.gcn import GCNConfig, GCNModel

    g = rmat_graph(RMATParams(scale=scale, edge_factor=3), seed=seed)
    model = GCNModel(
        g, GCNConfig(in_dim=k, hidden_dim=2 * k, out_dim=2, n_layers=2),
        seed=seed,
    )
    out = model.forward(model.random_features(seed=seed))
    assert np.isfinite(out).all()
