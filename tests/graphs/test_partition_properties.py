"""Property-based tests for block vertex partitioning (hypothesis).

The partition quality numbers feed the Section VI cut-cost argument
(and the distributed-CPU extension's MPI charges), so the partitioner
must actually be a partition: every vertex in exactly one part, parts
contiguous, loads balanced to within one vertex.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.partition import block_vertex_partition, evaluate_partition


@given(st.integers(0, 300), st.integers(1, 17))
@settings(max_examples=80, deadline=None)
def test_block_partition_covers_every_vertex_once(n, parts):
    part = block_vertex_partition(n, parts)
    # Exactly one label per vertex (cover + disjointness), all in range.
    assert part.shape == (n,)
    if n:
        assert part.min() >= 0 and part.max() <= parts - 1


@given(st.integers(1, 300), st.integers(1, 17))
@settings(max_examples=80, deadline=None)
def test_block_partition_is_contiguous_and_balanced(n, parts):
    part = block_vertex_partition(n, parts)
    # Contiguous blocks: labels never decrease along the vertex range.
    assert np.all(np.diff(part) >= 0)
    # Balance: linspace bounds make block sizes differ by at most one.
    loads = np.bincount(part, minlength=parts)
    assert loads.sum() == n
    assert loads.max() - loads.min() <= 1
    assert loads.max() <= int(np.ceil(n / parts))


@given(st.integers(2, 64), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_partition_determinism(n, parts):
    first = block_vertex_partition(n, parts)
    second = block_vertex_partition(n, parts)
    assert np.array_equal(first, second)


def test_rejects_nonpositive_parts():
    with pytest.raises(ValueError):
        block_vertex_partition(10, 0)


class TestEvaluatePartition:
    def test_single_part_has_no_cut(self, small_rmat):
        report = evaluate_partition(
            small_rmat, block_vertex_partition(small_rmat.n_rows, 1)
        )
        assert report.n_parts == 1
        assert report.edge_cut == 0
        assert report.replication_factor == 1.0
        assert report.balance == 1.0

    @pytest.mark.parametrize("parts", [2, 4, 8])
    def test_metrics_within_bounds(self, small_rmat, parts):
        report = evaluate_partition(
            small_rmat, block_vertex_partition(small_rmat.n_rows, parts)
        )
        assert report.n_parts == parts
        assert 0 <= report.edge_cut <= small_rmat.nnz
        assert report.replication_factor >= 1.0
        assert report.balance >= 1.0

    def test_more_parts_never_cut_fewer_edges(self, small_rmat):
        cuts = [
            evaluate_partition(
                small_rmat, block_vertex_partition(small_rmat.n_rows, p)
            ).edge_cut
            for p in (1, 2, 4, 8)
        ]
        # Refining contiguous blocks only adds boundaries.
        assert cuts == sorted(cuts)

    def test_rejects_wrong_length(self, small_rmat):
        with pytest.raises(ValueError):
            evaluate_partition(
                small_rmat, np.zeros(small_rmat.n_rows - 1, dtype=np.int64)
            )
