"""Property-based tests for vertex partitioning (hypothesis).

The partition quality numbers feed the Section VI cut-cost argument
(and the distributed-CPU extension's MPI charges), so each partitioner
must actually be a partition: every vertex in exactly one part, parts
contiguous, loads balanced — to within one vertex for the block
strategy, to within the advertised :func:`degree_balance_bound` for the
degree-aware strategy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ext.distributed import measure_cut_fraction
from repro.graphs.partition import (
    PARTITION_STRATEGIES,
    block_vertex_partition,
    degree_aware_partition,
    degree_balance_bound,
    edge_cut_matrix,
    evaluate_partition,
    partition_bounds,
    partition_graph,
)
from repro.sparse.csr import CSRMatrix


@st.composite
def csr_graphs(draw, max_vertices=48, max_degree=12):
    """An arbitrary small CSR adjacency, hubs and empty rows included."""
    n = draw(st.integers(1, max_vertices))
    degrees = draw(
        st.lists(st.integers(0, max_degree), min_size=n, max_size=n)
    )
    indptr = np.concatenate(([0], np.cumsum(degrees, dtype=np.int64)))
    nnz = int(indptr[-1])
    seed = draw(st.integers(0, 2**16))
    indices = np.random.default_rng(seed).integers(0, n, size=nnz)
    return CSRMatrix(indptr, indices, np.ones(nnz), (n, n))


@given(st.integers(0, 300), st.integers(1, 17))
@settings(max_examples=80, deadline=None)
def test_block_partition_covers_every_vertex_once(n, parts):
    part = block_vertex_partition(n, parts)
    # Exactly one label per vertex (cover + disjointness), all in range.
    assert part.shape == (n,)
    if n:
        assert part.min() >= 0 and part.max() <= parts - 1


@given(st.integers(1, 300), st.integers(1, 17))
@settings(max_examples=80, deadline=None)
def test_block_partition_is_contiguous_and_balanced(n, parts):
    part = block_vertex_partition(n, parts)
    # Contiguous blocks: labels never decrease along the vertex range.
    assert np.all(np.diff(part) >= 0)
    # Balance: linspace bounds make block sizes differ by at most one.
    loads = np.bincount(part, minlength=parts)
    assert loads.sum() == n
    assert loads.max() - loads.min() <= 1
    assert loads.max() <= int(np.ceil(n / parts))


@given(st.integers(2, 64), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_partition_determinism(n, parts):
    first = block_vertex_partition(n, parts)
    second = block_vertex_partition(n, parts)
    assert np.array_equal(first, second)


def test_rejects_nonpositive_parts():
    with pytest.raises(ValueError):
        block_vertex_partition(10, 0)


class TestDegreeAwarePartition:
    """The Accel-GCN-lineage equal-edge-load strategy."""

    @given(csr_graphs(), st.integers(1, 9))
    @settings(max_examples=60, deadline=None)
    def test_covers_every_vertex_once(self, adj, parts):
        part = degree_aware_partition(adj, parts)
        assert part.shape == (adj.n_rows,)
        assert part.min() >= 0 and part.max() <= parts - 1
        # Contiguous blocks, like every strategy here.
        assert np.all(np.diff(part) >= 0)

    @given(csr_graphs(), st.integers(1, 9))
    @settings(max_examples=60, deadline=None)
    def test_edge_balance_within_advertised_bound(self, adj, parts):
        part = degree_aware_partition(adj, parts)
        # Edge loads over the *explicit* part count: the degree strategy
        # may leave trailing parts empty, and those zero loads still
        # drag the mean down — the bound must hold regardless.
        loads = np.bincount(
            np.repeat(part, adj.row_degrees()), minlength=parts
        ).astype(np.float64)
        assert loads.sum() == adj.nnz
        if adj.nnz:
            balance = loads.max() / (adj.nnz / parts)
            assert balance <= degree_balance_bound(adj, parts) + 1e-12

    @given(csr_graphs(), st.integers(1, 9))
    @settings(max_examples=40, deadline=None)
    def test_matches_block_on_empty_graphs(self, adj, parts):
        if adj.nnz:
            return
        assert np.array_equal(
            degree_aware_partition(adj, parts),
            block_vertex_partition(adj.n_rows, parts),
        )

    def test_rejects_nonpositive_parts(self, small_rmat):
        with pytest.raises(ValueError):
            degree_aware_partition(small_rmat, 0)
        with pytest.raises(ValueError):
            degree_balance_bound(small_rmat, -1)

    def test_hub_graph_beats_block_balance(self):
        """One hub row owning most edges: degree-aware isolates it."""
        degrees = [60] + [1] * 29
        indptr = np.concatenate(([0], np.cumsum(degrees)))
        nnz = int(indptr[-1])
        indices = np.random.default_rng(3).integers(0, 30, size=nnz)
        adj = CSRMatrix(indptr, indices, np.ones(nnz), (30, 30))
        parts = 3
        edge_loads = lambda part: np.bincount(  # noqa: E731
            np.repeat(part, adj.row_degrees()), minlength=parts
        ).astype(np.float64)
        block = edge_loads(block_vertex_partition(adj.n_rows, parts))
        degree = edge_loads(degree_aware_partition(adj, parts))
        assert degree.max() < block.max()


class TestPartitionGraphDispatch:
    @given(csr_graphs(), st.integers(1, 9),
           st.sampled_from(PARTITION_STRATEGIES))
    @settings(max_examples=60, deadline=None)
    def test_every_strategy_is_a_partition(self, adj, parts, strategy):
        part = partition_graph(adj, parts, strategy=strategy)
        assert part.shape == (adj.n_rows,)
        assert part.min() >= 0 and part.max() <= parts - 1
        assert np.all(np.diff(part) >= 0)
        # Round-trip through the row-range form loses nothing.
        bounds = partition_bounds(part, parts)
        assert bounds[0] == 0 and bounds[-1] == adj.n_rows
        assert np.all(np.diff(bounds) >= 0)
        # Every edge lands in exactly one cell of the cut matrix.
        assert edge_cut_matrix(adj, part).sum() == adj.nnz

    def test_rejects_unknown_strategy(self, small_rmat):
        with pytest.raises(ValueError, match="strategy"):
            partition_graph(small_rmat, 2, strategy="metis")

    def test_partition_bounds_rejects_noncontiguous(self):
        with pytest.raises(ValueError, match="contiguous"):
            partition_bounds(np.array([0, 1, 0]), 2)


class TestMeasureCutFraction:
    @given(csr_graphs(), st.integers(1, 9),
           st.sampled_from(PARTITION_STRATEGIES))
    @settings(max_examples=60, deadline=None)
    def test_fraction_in_unit_interval(self, adj, n_nodes, strategy):
        fraction = measure_cut_fraction(adj, n_nodes, strategy=strategy)
        assert 0.0 <= fraction <= 1.0

    @given(csr_graphs(), st.sampled_from(PARTITION_STRATEGIES))
    @settings(max_examples=30, deadline=None)
    def test_single_node_cuts_nothing(self, adj, strategy):
        assert measure_cut_fraction(adj, 1, strategy=strategy) == 0.0

    def test_matches_explicit_cut(self, small_rmat):
        part = block_vertex_partition(small_rmat.n_rows, 4)
        expected = evaluate_partition(small_rmat, part).edge_cut
        fraction = measure_cut_fraction(small_rmat, 4)
        assert fraction == expected / small_rmat.nnz


class TestEvaluatePartition:
    def test_single_part_has_no_cut(self, small_rmat):
        report = evaluate_partition(
            small_rmat, block_vertex_partition(small_rmat.n_rows, 1)
        )
        assert report.n_parts == 1
        assert report.edge_cut == 0
        assert report.replication_factor == 1.0
        assert report.balance == 1.0

    @pytest.mark.parametrize("parts", [2, 4, 8])
    def test_metrics_within_bounds(self, small_rmat, parts):
        report = evaluate_partition(
            small_rmat, block_vertex_partition(small_rmat.n_rows, parts)
        )
        assert report.n_parts == parts
        assert 0 <= report.edge_cut <= small_rmat.nnz
        assert report.replication_factor >= 1.0
        assert report.balance >= 1.0

    def test_more_parts_never_cut_fewer_edges(self, small_rmat):
        cuts = [
            evaluate_partition(
                small_rmat, block_vertex_partition(small_rmat.n_rows, p)
            ).edge_cut
            for p in (1, 2, 4, 8)
        ]
        # Refining contiguous blocks only adds boundaries.
        assert cuts == sorted(cuts)

    def test_rejects_wrong_length(self, small_rmat):
        with pytest.raises(ValueError):
            evaluate_partition(
                small_rmat, np.zeros(small_rmat.n_rows - 1, dtype=np.int64)
            )
