import numpy as np
import pytest

from repro.graphs.rmat import (
    GRAPH500,
    UNIFORM,
    RMATParams,
    rmat_edges,
    rmat_for_size,
    rmat_graph,
)


class TestParams:
    def test_counts(self):
        p = RMATParams(scale=10, edge_factor=16)
        assert p.n_vertices == 1024
        assert p.n_edges == 16384

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            RMATParams(scale=4, edge_factor=2, abcd=(0.5, 0.5, 0.5, 0.5))

    def test_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            RMATParams(scale=-1, edge_factor=2)

    def test_rejects_zero_edge_factor(self):
        with pytest.raises(ValueError):
            RMATParams(scale=4, edge_factor=0)


class TestGeneration:
    def test_deterministic_by_seed(self):
        p = RMATParams(scale=8, edge_factor=8)
        s1, d1 = rmat_edges(p, seed=3)
        s2, d2 = rmat_edges(p, seed=3)
        np.testing.assert_array_equal(s1, s2)
        np.testing.assert_array_equal(d1, d2)

    def test_different_seeds_differ(self):
        p = RMATParams(scale=8, edge_factor=8)
        s1, _ = rmat_edges(p, seed=1)
        s2, _ = rmat_edges(p, seed=2)
        assert not np.array_equal(s1, s2)

    def test_endpoints_in_range(self):
        p = RMATParams(scale=6, edge_factor=4)
        src, dst = rmat_edges(p, seed=0)
        assert src.min() >= 0 and src.max() < 64
        assert dst.min() >= 0 and dst.max() < 64

    def test_edge_count(self):
        p = RMATParams(scale=7, edge_factor=5)
        src, dst = rmat_edges(p, seed=0)
        assert src.shape[0] == p.n_edges == dst.shape[0]

    def test_skewed_has_higher_max_degree_than_uniform(self):
        skew = rmat_graph(RMATParams(10, 16, GRAPH500), seed=0)
        flat = rmat_graph(RMATParams(10, 16, UNIFORM), seed=0)
        assert skew.row_degrees().max() > flat.row_degrees().max()

    def test_symmetric_graph_is_symmetric(self):
        g = rmat_graph(RMATParams(7, 8), seed=5, symmetric=True)
        dense = g.to_dense()
        np.testing.assert_allclose(dense, dense.T)

    def test_rejects_no_coalesce(self):
        with pytest.raises(ValueError):
            rmat_graph(RMATParams(4, 2), coalesce=False)


class TestForSize:
    def test_matches_vertex_budget(self):
        g = rmat_for_size(n_vertices=1000, n_edges=8000, seed=0)
        assert g.shape == (1000, 1000)

    def test_edge_budget_approximate(self):
        g = rmat_for_size(n_vertices=1000, n_edges=8000, seed=0)
        # Coalescing removes duplicates; within 40% is structural parity.
        assert 0.6 * 8000 <= g.nnz <= 8000

    def test_non_power_of_two(self):
        g = rmat_for_size(n_vertices=300, n_edges=1200, seed=1)
        assert g.shape == (300, 300)
        assert g.indices.max() < 300

    def test_rejects_zero_vertices(self):
        with pytest.raises(ValueError):
            rmat_for_size(0, 10)
